"""Geometric 60 GHz indoor channel: image-method ray tracing.

The channel between a Tx pose and an Rx position is a *sparse* set of rays —
the LOS path plus first- and second-order wall/clutter reflections — which
is exactly the regime the paper leans on ("owing to the sparsity of 60 GHz
channels", §6.1).  Each ray carries:

* angle of departure (AoD) at the Tx and angle of arrival (AoA) at the Rx,
  both in the global frame — beam gains are applied later relative to each
  antenna's orientation;
* path length → propagation delay (ToF) and free-space + oxygen loss;
* accumulated reflection loss;
* blockage loss if the ray crosses a human blocker.

Received power for a (Tx beam, Rx beam) pair is the incoherent sum of
per-ray powers weighted by both beam gains.  Incoherent combining is the
right abstraction here: we model 1 s averages of a 2 GHz-wide channel whose
taps are resolvable, not instantaneous fading.
"""

from __future__ import annotations

import math

import numpy as np
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.constants import SPEED_OF_LIGHT_M_S
from repro.env.geometry import (
    Point,
    Segment,
    mirror_point,
    path_is_clear,
    segment_intersection,
)
from repro.env.rooms import Room
from repro.phy.antenna import Beam, Codebook
from repro.phy.propagation import path_loss_db


@dataclass(frozen=True)
class Ray:
    """One propagation path between Tx and Rx."""

    aod_deg: float
    aoa_deg: float
    path_length_m: float
    loss_db: float
    order: int  # 0 = LOS, 1 = single bounce, 2 = double bounce
    via: tuple[str, ...] = ()

    @property
    def delay_s(self) -> float:
        return self.path_length_m / SPEED_OF_LIGHT_M_S

    @property
    def delay_ns(self) -> float:
        # Cached: rays are shared via the trace cache, and the PDP builder
        # touches every ray's delay once per measured state.
        cached = self.__dict__.get("_delay_ns")
        if cached is None:
            cached = self.delay_s * 1e9
            object.__setattr__(self, "_delay_ns", cached)
        return cached


@dataclass(frozen=True)
class LinkGeometry:
    """Everything needed to trace the channel for one link instant."""

    room: Room
    tx_position: Point
    rx_position: Point
    blockers: tuple[Segment, ...] = ()

    def with_blockers(self, blockers: Sequence[Segment]) -> "LinkGeometry":
        return LinkGeometry(self.room, self.tx_position, self.rx_position, tuple(blockers))


@dataclass
class ChannelState:
    """The traced channel: rays plus the noise conditions at the Rx.

    ``interference`` (an :class:`~repro.phy.interference.InterferenceField`)
    is directional: its contribution depends on the Rx beam, so the total
    noise is computed per beam pair in :func:`snr_db`.
    """

    rays: list[Ray]
    noise_dbm: float
    interference: Optional[object] = None  # InterferenceField (avoids cycle)
    geometry: Optional[LinkGeometry] = None
    extra_fields: dict = field(default_factory=dict)

    def effective_noise_dbm(
        self, rx_beam: Optional[Beam] = None, rx_orientation_deg: float = 0.0
    ) -> float:
        """Noise + interference power as seen by ``rx_beam``.

        Without a beam, interference is evaluated at quasi-omni gain (the
        view a sector sweep's quasi-omni listener gets).
        """
        if self.interference is None:
            return self.noise_dbm
        if rx_beam is None:
            interference_dbm = self.interference.omni_power_dbm()
        else:
            interference_dbm = self.interference.power_dbm(rx_beam, rx_orientation_deg)
        total_mw = 10.0 ** (self.noise_dbm / 10.0) + 10.0 ** (interference_dbm / 10.0)
        return 10.0 * math.log10(total_mw)

    def strongest_ray(self) -> Optional[Ray]:
        if not self.rays:
            return None
        return min(self.rays, key=lambda r: r.loss_db)


# ---------------------------------------------------------------------------
# Ray tracing
# ---------------------------------------------------------------------------

_MIN_RAY_GAIN_DB = -140.0
"""Rays with more than 140 dB of loss are dropped (below any noise floor)."""


def _blockage_loss_db(p1: Point, p2: Point, blockers: Sequence[Segment]) -> float:
    """Total knife-edge loss from blockers crossing the sub-path ``p1p2``.

    Each blocker segment stores its own loss in ``material_loss_db``.
    """
    loss = 0.0
    for blocker in blockers:
        if segment_intersection(p1, p2, blocker.a, blocker.b) is not None:
            loss += blocker.material_loss_db
    return loss


def _los_ray(geometry: LinkGeometry) -> Optional[Ray]:
    tx, rx = geometry.tx_position, geometry.rx_position
    if not path_is_clear(tx, rx, geometry.room.obstacles()):
        # Clutter fully blocks this LOS (e.g. desk rows); model as heavy loss
        # rather than dropping the ray — mm-wave diffracts a little.
        clutter_loss = 35.0
    else:
        clutter_loss = 0.0
    length = tx.distance_to(rx)
    loss = path_loss_db(length) + clutter_loss
    loss += _blockage_loss_db(tx, rx, geometry.blockers)
    if -loss < _MIN_RAY_GAIN_DB:
        return None
    return Ray(
        aod_deg=math.degrees(tx.angle_to(rx)),
        aoa_deg=math.degrees(rx.angle_to(tx)),
        path_length_m=length,
        loss_db=loss,
        order=0,
        via=(),
    )


def _first_order_ray(
    geometry: LinkGeometry, wall: Segment, room_obstacles: Optional[list[Segment]] = None
) -> Optional[Ray]:
    """Single-bounce ray off ``wall`` using the image method.

    ``room_obstacles`` lets :func:`trace_rays` hoist the
    ``room.obstacles()`` list out of the per-wall loop.
    """
    tx, rx = geometry.tx_position, geometry.rx_position
    image = mirror_point(tx, wall)
    hit = segment_intersection(image, rx, wall.a, wall.b)
    if hit is None:
        return None
    if room_obstacles is None:
        room_obstacles = geometry.room.obstacles()
    # Both sub-paths must be clear of other clutter.
    obstacles = [s for s in room_obstacles if s is not wall]
    if not path_is_clear(tx, hit, obstacles):
        return None
    if not path_is_clear(hit, rx, obstacles):
        return None
    length = tx.distance_to(hit) + hit.distance_to(rx)
    loss = path_loss_db(length) + wall.material_loss_db
    loss += _blockage_loss_db(tx, hit, geometry.blockers)
    loss += _blockage_loss_db(hit, rx, geometry.blockers)
    if -loss < _MIN_RAY_GAIN_DB:
        return None
    return Ray(
        aod_deg=math.degrees(tx.angle_to(hit)),
        aoa_deg=math.degrees(rx.angle_to(hit)),
        path_length_m=length,
        loss_db=loss,
        order=1,
        via=(wall.name,),
    )


def _second_order_ray(
    geometry: LinkGeometry,
    wall1: Segment,
    wall2: Segment,
    room_obstacles: Optional[list[Segment]] = None,
    image1: Optional[Point] = None,
) -> Optional[Ray]:
    """Double-bounce ray: Tx → wall1 → wall2 → Rx via nested images.

    ``room_obstacles`` and ``image1`` (the Tx mirrored across ``wall1``)
    let :func:`trace_rays` hoist per-wall-pair recomputation out of the
    O(walls²) loop.
    """
    tx, rx = geometry.tx_position, geometry.rx_position
    if image1 is None:
        image1 = mirror_point(tx, wall1)
    image2 = mirror_point(image1, wall2)
    hit2 = segment_intersection(image2, rx, wall2.a, wall2.b)
    if hit2 is None:
        return None
    hit1 = segment_intersection(image1, hit2, wall1.a, wall1.b)
    if hit1 is None:
        return None
    if room_obstacles is None:
        room_obstacles = geometry.room.obstacles()
    obstacles = [s for s in room_obstacles if s is not wall1 and s is not wall2]
    for p1, p2 in ((tx, hit1), (hit1, hit2), (hit2, rx)):
        if not path_is_clear(p1, p2, obstacles):
            return None
    length = tx.distance_to(hit1) + hit1.distance_to(hit2) + hit2.distance_to(rx)
    loss = path_loss_db(length) + wall1.material_loss_db + wall2.material_loss_db
    for p1, p2 in ((tx, hit1), (hit1, hit2), (hit2, rx)):
        loss += _blockage_loss_db(p1, p2, geometry.blockers)
    if -loss < _MIN_RAY_GAIN_DB:
        return None
    return Ray(
        aod_deg=math.degrees(tx.angle_to(hit1)),
        aoa_deg=math.degrees(rx.angle_to(hit2)),
        path_length_m=length,
        loss_db=loss,
        order=2,
        via=(wall1.name, wall2.name),
    )


def trace_rays(geometry: LinkGeometry, max_order: int = 2) -> list[Ray]:
    """Trace all rays up to ``max_order`` reflections, strongest first."""
    if max_order < 0:
        raise ValueError("max_order must be >= 0")
    rays: list[Ray] = []
    los = _los_ray(geometry)
    if los is not None:
        rays.append(los)
    reflectors = geometry.room.reflectors()
    room_obstacles = geometry.room.obstacles()
    if max_order >= 1:
        for wall in reflectors:
            ray = _first_order_ray(geometry, wall, room_obstacles)
            if ray is not None:
                rays.append(ray)
    if max_order >= 2:
        tx = geometry.tx_position
        images1 = [mirror_point(tx, wall) for wall in reflectors]
        for wall1, image1 in zip(reflectors, images1):
            for wall2 in reflectors:
                if wall1 is wall2:
                    continue
                ray = _second_order_ray(
                    geometry, wall1, wall2, room_obstacles, image1
                )
                if ray is not None:
                    rays.append(ray)
    rays.sort(key=lambda r: r.loss_db)
    return rays


# ---------------------------------------------------------------------------
# Received power / SNR for beam pairs
# ---------------------------------------------------------------------------


def received_power_dbm(
    rays: Sequence[Ray],
    tx_beam: Beam,
    rx_beam: Beam,
    tx_orientation_deg: float,
    rx_orientation_deg: float,
    tx_power_dbm: float,
) -> float:
    """Incoherent sum of per-ray received powers for one beam pair.

    Beam gains are evaluated at the ray's AoD/AoA *relative to each array's
    boresight orientation* — one vectorized pattern evaluation per antenna
    covers every ray.
    """
    if not rays:
        return -300.0
    powers = _per_ray_powers_array(
        rays, tx_beam, rx_beam, tx_orientation_deg, rx_orientation_deg, tx_power_dbm
    )
    total_mw = float(np.sum(10.0 ** (powers / 10.0)))
    if total_mw <= 0.0:
        return -300.0
    return 10.0 * math.log10(total_mw)


def _per_ray_powers_array(
    rays: Sequence[Ray],
    tx_beam: Beam,
    rx_beam: Beam,
    tx_orientation_deg: float,
    rx_orientation_deg: float,
    tx_power_dbm: float,
) -> np.ndarray:
    aod = np.array([r.aod_deg - tx_orientation_deg for r in rays])
    aoa = np.array([r.aoa_deg - rx_orientation_deg for r in rays])
    loss = np.array([r.loss_db for r in rays])
    return (
        tx_power_dbm
        + tx_beam.gain_dbi_array(aod)
        + rx_beam.gain_dbi_array(aoa)
        - loss
    )


def per_ray_received_powers_dbm(
    rays: Sequence[Ray],
    tx_beam: Beam,
    rx_beam: Beam,
    tx_orientation_deg: float,
    rx_orientation_deg: float,
    tx_power_dbm: float,
) -> list[float]:
    """Per-ray received power (for PDP construction), same order as ``rays``."""
    if not rays:
        return []
    powers = _per_ray_powers_array(
        rays, tx_beam, rx_beam, tx_orientation_deg, rx_orientation_deg, tx_power_dbm
    )
    return [float(p) for p in powers]


def snr_db(
    state: ChannelState,
    tx_beam: Beam,
    rx_beam: Beam,
    tx_orientation_deg: float,
    rx_orientation_deg: float,
    tx_power_dbm: float,
) -> float:
    """SINR of one beam pair under the channel state's noise + interference."""
    rx_power = received_power_dbm(
        state.rays, tx_beam, rx_beam, tx_orientation_deg, rx_orientation_deg, tx_power_dbm
    )
    return rx_power - state.effective_noise_dbm(rx_beam, rx_orientation_deg)


def snr_matrix_db(
    state: ChannelState,
    codebook: Codebook,
    tx_orientation_deg: float,
    rx_orientation_deg: float,
    tx_power_dbm: float,
) -> np.ndarray:
    """SINR of *every* beam pair at once: shape (n_tx_beams, n_rx_beams).

    Vectorised over rays: the received power of pair (i, j) is
    ``sum_r gtx[i,r] * grx[j,r] * a[r]`` — a single matrix product — and
    per-Rx-beam interference enters as a column-wise noise term.
    """
    n = len(codebook)
    if not state.rays:
        return np.full((n, n), -300.0)
    aod = np.array([r.aod_deg - tx_orientation_deg for r in state.rays])
    aoa = np.array([r.aoa_deg - rx_orientation_deg for r in state.rays])
    loss = np.array([r.loss_db for r in state.rays])
    amp = 10.0 ** ((tx_power_dbm - loss) / 10.0)
    # One pattern evaluation over the concatenated AoD/AoA angles covers
    # both antennas (elementwise, so identical to two separate calls).
    gm = codebook.gain_matrix_dbi(np.concatenate([aod, aoa]))
    gtx_dbi = gm[:, : aod.size]  # (n, R)
    grx_dbi = gm[:, aod.size:]  # (n, R)
    # Stash the per-(beam, ray) gain rows: a subsequent measure() of any
    # beam pair on this state reuses them instead of re-evaluating the
    # patterns (rows are bit-identical to Beam.gain_dbi_array output).
    state.extra_fields["_pair_gains"] = (
        tx_orientation_deg, rx_orientation_deg, gtx_dbi, grx_dbi, loss
    )
    gtx = 10.0 ** (gtx_dbi / 10.0)
    grx = 10.0 ** (grx_dbi / 10.0)
    signal_mw = (gtx * amp) @ grx.T  # (n_tx, n_rx)

    noise_mw = 10.0 ** (state.noise_dbm / 10.0)
    if state.interference is not None:
        irays = state.interference.rays
        iamp = 10.0 ** (
            (state.interference.eirp_dbm - np.array([r.loss_db for r in irays])) / 10.0
        )
        iaoa = np.array([r.aoa_deg - rx_orientation_deg for r in irays])
        girx = 10.0 ** (codebook.gain_matrix_dbi(iaoa) / 10.0)  # (n, RI)
        interference_mw = girx @ iamp  # per-Rx-beam, shape (n,)
        noise_per_rx = noise_mw + interference_mw
    else:
        noise_per_rx = np.full(n, noise_mw)

    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(np.maximum(signal_mw / noise_per_rx[None, :], 1e-30))


def best_beam_pair(
    state: ChannelState,
    codebook: Codebook,
    tx_orientation_deg: float,
    rx_orientation_deg: float,
    tx_power_dbm: float,
) -> tuple[int, int, float]:
    """Exhaustive O(N^2) sweep: the (tx_beam, rx_beam) pair maximising SNR.

    This is the naive search the paper uses to *emulate BA* during dataset
    collection (§5.1).  Returns ``(tx_index, rx_index, snr_db)``.
    """
    matrix = snr_matrix_db(
        state, codebook, tx_orientation_deg, rx_orientation_deg, tx_power_dbm
    )
    flat_index = int(np.argmax(matrix))
    ti, ri = divmod(flat_index, matrix.shape[1])
    return ti, ri, float(matrix[ti, ri])
