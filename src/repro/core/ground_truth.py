"""Ground-truth labelling (§5.2).

Given the logged traces at a new state — one measurement on the *initial*
best beam pair and one on the *new* best pair found by an SLS — the ground
truth "simulates" both repair strategies:

* **RA alone**: descend the MCS ladder from the initial best MCS on the old
  beam pair;  ``Th(RA)`` is the best throughput found.  If no MCS works, a
  real MAC would fall back to BA followed by another RA round.
* **BA (then RA)**: pay the sweep overhead, switch to the new best pair,
  then descend from the initial MCS; ``Th(BA)`` is the best throughput with
  the new pair among MCSs ≤ the initial one (the paper's refined
  definition — BA typically lands on a longer reflected path, which will
  not support a *higher* MCS than before).

Both the throughput winner and the *link recovery delay* — time from the
break until the first working MCS — are combined in the utility

    U = α · Th/Th_max + (1 − α) · (1 − D/D_max)          (Eqn. 1)

with D_max = N_MCS·FAT + d_BA + N_MCS·FAT, the pathological case where RA
is tried first, fails entirely, BA runs, and RA must scan again.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.constants import X60_NUM_MCS
from repro.core.mcs import X60_MCS_SET
from repro.testbed.traces import StateMeasurement


class Action(enum.Enum):
    """The three adaptation decisions LiBRA can make."""

    RA = "RA"
    BA = "BA"
    NA = "NA"  # no adaptation needed

    def __str__(self) -> str:  # keeps dataset files compact
        return self.value


@dataclass(frozen=True)
class GroundTruthConfig:
    """Protocol parameters the ground truth depends on (§5.2, §8.1)."""

    alpha: float = 1.0
    ba_overhead_s: float = 5e-3
    frame_time_s: float = 2e-3
    num_mcs: int = X60_NUM_MCS
    max_rate_mbps: float = X60_MCS_SET.max_rate_mbps
    tie_margin: float = 0.001
    """Utility differences below this are measurement noise, not a win:
    real 1 s throughput traces resolve differences of roughly a percent of
    the peak rate, so a BA 'advantage' smaller than that is a tie — and
    ties go to RA, per the paper's "RA when Th(RA) ≥ Th(BA)"."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.ba_overhead_s < 0 or self.frame_time_s <= 0:
            raise ValueError("overheads must be non-negative, frame time positive")
        if self.tie_margin < 0:
            raise ValueError("tie_margin must be non-negative")


def max_delay_s(config: GroundTruthConfig) -> float:
    """D_max: failed full RA scan + BA + second full RA scan (§5.2)."""
    return 2.0 * config.num_mcs * config.frame_time_s + config.ba_overhead_s


def _is_working(measurement: StateMeasurement, mcs: int) -> bool:
    from repro.constants import WORKING_MCS_MIN_CDR, WORKING_MCS_MIN_THROUGHPUT_MBPS

    return (
        measurement.cdr[mcs] > WORKING_MCS_MIN_CDR
        and measurement.throughput_mbps[mcs] > WORKING_MCS_MIN_THROUGHPUT_MBPS
    )


def first_working_descending(
    measurement: StateMeasurement, start_mcs: int
) -> tuple[Optional[int], int]:
    """Scan MCSs ``start_mcs, start_mcs-1, …, 0`` until one works.

    Returns ``(found_mcs_or_None, frames_spent)``; a full failed scan costs
    ``start_mcs + 1`` frames.
    """
    for steps, mcs in enumerate(range(start_mcs, -1, -1), start=1):
        if _is_working(measurement, mcs):
            return mcs, steps
    return None, start_mcs + 1


def th_ra(new_same_pair: StateMeasurement, initial_mcs: int) -> float:
    """Th(RA): best throughput on the old beam pair, MCS ≤ initial (§5.2)."""
    return new_same_pair.best_throughput(max_mcs=initial_mcs)


def th_ba(new_best_pair: StateMeasurement, initial_mcs: int) -> float:
    """Th(BA): best throughput on the new best pair, MCS ≤ initial (§5.2)."""
    return new_best_pair.best_throughput(max_mcs=initial_mcs)


def recovery_delay_ra_s(
    new_same_pair: StateMeasurement,
    new_best_pair: StateMeasurement,
    initial_mcs: int,
    config: GroundTruthConfig,
) -> float:
    """Link recovery delay when RA is triggered first.

    If the old pair still has a working MCS the delay is just the probing
    frames; otherwise the full failed scan, the BA sweep, and a second scan
    on the new pair are all paid (the paper's D_max construction).
    """
    found, frames = first_working_descending(new_same_pair, initial_mcs)
    if found is not None:
        return frames * config.frame_time_s
    delay = frames * config.frame_time_s + config.ba_overhead_s
    found2, frames2 = first_working_descending(new_best_pair, initial_mcs)
    delay += frames2 * config.frame_time_s
    if found2 is None:
        # Nothing works anywhere: the link is dead; delay saturates at D_max.
        return max_delay_s(config)
    return delay


def recovery_delay_ba_s(
    new_best_pair: StateMeasurement,
    initial_mcs: int,
    config: GroundTruthConfig,
) -> float:
    """Link recovery delay when BA is triggered first (then RA)."""
    found, frames = first_working_descending(new_best_pair, initial_mcs)
    delay = config.ba_overhead_s + frames * config.frame_time_s
    if found is None:
        return max_delay_s(config)
    return delay


def utility(throughput_mbps: float, delay_s: float, config: GroundTruthConfig) -> float:
    """The paper's utility metric U (Eqn. 1)."""
    d_max = max_delay_s(config)
    delay_term = 1.0 - min(delay_s, d_max) / d_max
    return (
        config.alpha * throughput_mbps / config.max_rate_mbps
        + (1.0 - config.alpha) * delay_term
    )


@dataclass(frozen=True)
class LabelInputs:
    """The point-independent half of :func:`label_entry`.

    Everything the labelling rule needs that does not depend on
    (α, BA overhead, FAT): the two best-throughput candidates and the two
    descending scans.  Computing these once per entry lets the evaluation
    grid relabel the training set for each operating point in O(1) float
    work per entry (:func:`label_from_inputs`) instead of re-walking the
    traces — with identical arithmetic, so labels match bit for bit.
    """

    th_ra: float
    th_ba: float
    found_same: Optional[int]
    frames_same: int
    found_best: Optional[int]
    frames_best: int


def label_inputs(
    new_same_pair: StateMeasurement,
    new_best_pair: StateMeasurement,
    initial_mcs: int,
) -> LabelInputs:
    """Extract the reusable scan results for one entry."""
    found_same, frames_same = first_working_descending(new_same_pair, initial_mcs)
    found_best, frames_best = first_working_descending(new_best_pair, initial_mcs)
    return LabelInputs(
        th_ra(new_same_pair, initial_mcs),
        th_ba(new_best_pair, initial_mcs),
        found_same,
        frames_same,
        found_best,
        frames_best,
    )


def label_from_inputs(
    inputs: LabelInputs, config: GroundTruthConfig = GroundTruthConfig()
) -> Action:
    """:func:`label_entry` from precomputed scans — same floats, same label.

    The delay expressions replicate :func:`recovery_delay_ra_s` and
    :func:`recovery_delay_ba_s` operation by operation (same order, same
    saturation), so the utilities — and therefore the tie-margin decision —
    are bitwise identical to the trace-walking path.
    """
    if inputs.found_same is not None:
        delay_ra = inputs.frames_same * config.frame_time_s
    else:
        delay = inputs.frames_same * config.frame_time_s + config.ba_overhead_s
        delay += inputs.frames_best * config.frame_time_s
        delay_ra = max_delay_s(config) if inputs.found_best is None else delay
    if inputs.found_best is None:
        delay_ba = max_delay_s(config)
    else:
        delay_ba = config.ba_overhead_s + inputs.frames_best * config.frame_time_s
    u_ra = utility(inputs.th_ra, delay_ra, config)
    u_ba = utility(inputs.th_ba, delay_ba, config)
    return Action.RA if u_ra >= u_ba - config.tie_margin else Action.BA


def label_entry(
    new_same_pair: StateMeasurement,
    new_best_pair: StateMeasurement,
    initial_mcs: int,
    config: GroundTruthConfig = GroundTruthConfig(),
) -> Action:
    """The ground-truth winner for one dataset entry.

    Ties go to RA, matching the paper's "perform RA when Th(RA) ≥ Th(BA)".
    """
    u_ra = utility(
        th_ra(new_same_pair, initial_mcs),
        recovery_delay_ra_s(new_same_pair, new_best_pair, initial_mcs, config),
        config,
    )
    u_ba = utility(
        th_ba(new_best_pair, initial_mcs),
        recovery_delay_ba_s(new_best_pair, initial_mcs, config),
        config,
    )
    return Action.RA if u_ra >= u_ba - config.tie_margin else Action.BA
