"""Beam adaptation (BA) algorithms and their overhead models.

The paper evaluates LiBRA under four BA-overhead operating points (§8.1):

* **0.5 ms** — 802.11ad-style O(N) sector-level sweep with quasi-omni
  reception and a 30° beamwidth (today's COTS devices);
* **5 ms** — the same protocol with a 3° beamwidth (the minimum 802.11ad
  allows, hence ~10x the sectors);
* **150 ms / 250 ms** — exhaustive O(N²) sweeps that train both Tx and Rx
  beams with directional reception at 9°/7° beamwidths (the future,
  dense-deployment regime, numbers from Sur et al.'s Fig. 11).

:func:`ba_overhead_s` is the parametric model behind those four values;
:class:`BeamAdaptation` runs an actual sweep against the emulated testbed
(used by the live examples and the COTS motivation study), while the §8
trace-based simulation only needs the overhead values plus the recorded
best-pair traces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.constants import BA_OVERHEADS_S
from repro.env.placement import RadioPose
from repro.phy.channel import ChannelState
from repro.testbed.x60 import X60Link

SECTOR_SWEEP_FRAME_S = 15.8e-6
"""Duration of one sector-sweep control frame (SSW frame, 802.11ad)."""

AZIMUTH_SPAN_DEG = 120.0
"""The phased arrays cover ±60° in azimuth."""


class SweepKind(enum.Enum):
    """The sweep protocols considered in the paper."""

    TX_ONLY_QUASI_OMNI = "tx-only"  # O(N): COTS behaviour
    TX_AND_RX = "tx-and-rx"  # O(N) per side, 802.11ad standard SLS
    EXHAUSTIVE = "exhaustive"  # O(N^2): both sides trained jointly


def sectors_for_beamwidth(beamwidth_deg: float) -> int:
    """Number of sectors needed to cover the azimuth span."""
    if beamwidth_deg <= 0:
        raise ValueError("beamwidth must be positive")
    return max(1, round(AZIMUTH_SPAN_DEG / beamwidth_deg))


def ba_overhead_s(
    kind: SweepKind,
    beamwidth_deg: float,
    frame_time_s: float = SECTOR_SWEEP_FRAME_S,
    per_pair_dwell_s: Optional[float] = None,
) -> float:
    """Sweep duration for a protocol/beamwidth combination.

    For the exhaustive sweep, ``per_pair_dwell_s`` is the time spent
    measuring each beam pair (hardware-dependent; X60-class platforms need
    ~0.5-1 ms per pair, which is what produces the 150-250 ms numbers).
    """
    n = sectors_for_beamwidth(beamwidth_deg)
    if kind is SweepKind.TX_ONLY_QUASI_OMNI:
        return n * frame_time_s
    if kind is SweepKind.TX_AND_RX:
        return 2 * n * frame_time_s
    dwell = per_pair_dwell_s if per_pair_dwell_s is not None else 1e-3
    return n * n * dwell


def canonical_overheads_s() -> tuple[float, ...]:
    """The paper's four §8.1 operating points."""
    return BA_OVERHEADS_S


@dataclass
class SweepResult:
    """Outcome of one beam-adaptation run."""

    tx_beam: int
    rx_beam: int
    snr_db: float
    overhead_s: float
    pairs_tested: int


class BeamAdaptation:
    """Run a sweep against the emulated testbed.

    ``kind`` selects the search: the exhaustive sweep tests all N² pairs;
    the Tx-only sweep holds the Rx in quasi-omni (emulated by fixing the
    Rx beam to the current one and scoring Tx beams only, then keeping the
    Rx beam unchanged — the COTS shortcut described in §2).
    """

    def __init__(
        self,
        kind: SweepKind = SweepKind.EXHAUSTIVE,
        overhead_s: Optional[float] = None,
        beamwidth_deg: float = 30.0,
    ):
        self.kind = kind
        self.beamwidth_deg = beamwidth_deg
        self.overhead_s = (
            overhead_s if overhead_s is not None else ba_overhead_s(kind, beamwidth_deg)
        )

    def run(
        self,
        link: X60Link,
        state: ChannelState,
        rx: RadioPose,
        current_rx_beam: int = 0,
    ) -> SweepResult:
        n = len(link.codebook)
        if self.kind is SweepKind.TX_ONLY_QUASI_OMNI:
            best = (0, -1e9)
            for tx_beam in range(n):
                snr = link.snr_for_pair(state, rx, tx_beam, current_rx_beam)
                if snr > best[1]:
                    best = (tx_beam, snr)
            return SweepResult(best[0], current_rx_beam, best[1], self.overhead_s, n)
        tx_beam, rx_beam, snr = link.sector_sweep(state, rx)
        pairs = n * n if self.kind is SweepKind.EXHAUSTIVE else 2 * n
        return SweepResult(tx_beam, rx_beam, snr, self.overhead_s, pairs)
