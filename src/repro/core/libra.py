"""The LiBRA controller (§7, Algorithm 1).

LiBRA decides, every two frames, using the PHY-metric deltas piggybacked on
Block ACKs:

1. **No adaptation / RA / BA** via a 3-class model (the paper's random
   forest retrained with NA entries);
2. **Missing-ACK rule**: with no ACK there are no fresh metrics, so LiBRA
   falls back to a dataset statistic — below MCS 6, BA is right 92 % of
   the time, so trigger BA; at MCS ≥ 6 trigger BA only when the BA
   overhead is low, otherwise RA (§7, issue 3);
3. After BA, always run RA (BA lands on a new path whose best MCS is
   unknown); after a failed RA, run BA then RA (Algorithm 1's fallback).

The classifier is pluggable: anything with a ``predict(X) → array of
label strings`` method works (the from-scratch models in :mod:`repro.ml`
all qualify), so LiBRA "works with a variety of RA and BA algorithms" and
models, as the paper stresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

import numpy as np

from repro.constants import (
    BA_OVERHEAD_THRESHOLD_S,
    DECISION_PERIOD_FRAMES,
    MISSING_ACK_MCS_THRESHOLD,
)
from repro.core.ground_truth import Action
from repro.core.policies import (
    LinkAdaptationPolicy,
    Observation,
    PolicyDecision,
)
from repro.obs.metrics import get_metrics


class Classifier(Protocol):
    """Anything that maps feature rows to label strings."""

    def predict(self, features: np.ndarray) -> np.ndarray: ...


@dataclass(frozen=True)
class LiBRAConfig:
    """Protocol knobs of the controller (defaults = the paper's)."""

    missing_ack_mcs_threshold: int = MISSING_ACK_MCS_THRESHOLD
    ba_overhead_threshold_s: float = BA_OVERHEAD_THRESHOLD_S
    decision_period_frames: int = DECISION_PERIOD_FRAMES

    def __post_init__(self) -> None:
        if self.decision_period_frames < 1:
            raise ValueError("decision period must be at least one frame")


@dataclass
class LiBRA(LinkAdaptationPolicy):
    """The learning-based policy of Algorithm 1."""

    model: Classifier
    config: LiBRAConfig = field(default_factory=LiBRAConfig)
    name: str = "LiBRA"
    _frames_since_decision: int = field(default=0, init=False, repr=False)

    def reset(self) -> None:
        self._frames_since_decision = 0

    def decide(self, observation: Observation) -> PolicyDecision:
        """One pass of Algorithm 1's selectAction().

        Hardened: rejected features (absent, non-finite, out-of-range CDR),
        a classifier that raises, and garbage model output all degrade to
        the §7 missing-ACK rule — no ACK-borne information can be trusted,
        which is precisely the situation that rule covers — instead of
        crashing the controller or acting on poisoned inputs.
        """
        if observation.ack_missing:
            return self._missing_ack_rule(observation)
        rejection = self._feature_rejection(observation)
        if rejection is not None:
            return self._degrade(observation, f"features rejected ({rejection})")
        try:
            prediction = self.model.predict(
                observation.features.to_array().reshape(1, -1)
            )[0]
        except Exception as error:  # isolation boundary: any model failure degrades
            get_metrics().counter("libra.model_error").inc()
            return self._degrade(
                observation, f"model error ({type(error).__name__}: {error})"
            )
        return self._prediction_decision(prediction, observation)

    def decide_batch(self, observations: list[Observation]) -> list[PolicyDecision]:
        """Batched selectAction(): one forest call for a whole entry list.

        The missing-ACK rule and feature sanitization stay per-observation;
        every accepted feature row joins a single ``model.predict`` call
        (forest inference routes rows independently, so the stacked call
        returns exactly the per-row labels).  A model that errors — or one
        that returns the wrong number of labels — drops back to per-row
        :meth:`decide`, reproducing the scalar degradation path message
        for message.  Decisions come back in observation order.
        """
        decisions: list[Optional[PolicyDecision]] = [None] * len(observations)
        rows: list[np.ndarray] = []
        where: list[int] = []
        for index, observation in enumerate(observations):
            if observation.ack_missing:
                decisions[index] = self._missing_ack_rule(observation)
                continue
            rejection = self._feature_rejection(observation)
            if rejection is not None:
                decisions[index] = self._degrade(
                    observation, f"features rejected ({rejection})"
                )
                continue
            rows.append(observation.features.to_array())
            where.append(index)
        if rows:
            try:
                predictions = self.model.predict(np.stack(rows))
                if len(predictions) != len(where):
                    raise ValueError("prediction count mismatch")
            except Exception:  # isolation boundary: replay the scalar degradation
                # The per-row decide() calls below count each model error;
                # this counter marks that the *batched* call was the one
                # that failed (a shape/stacking bug, not a model bug).
                get_metrics().counter("libra.batch_predict_error").inc()
                for index in where:
                    decisions[index] = self.decide(observations[index])
            else:
                for index, prediction in zip(where, predictions):
                    decisions[index] = self._prediction_decision(
                        prediction, observations[index]
                    )
        return decisions

    def _prediction_decision(
        self, prediction, observation: Observation
    ) -> PolicyDecision:
        """Map one model label to the decision (shared scalar/batch tail)."""
        try:
            action = Action(str(prediction))
        except ValueError:
            return self._degrade(observation, f"unknown model label {prediction!r}")
        if action is Action.NA:
            return PolicyDecision(Action.NA, "model: no adaptation needed")
        if action is Action.RA:
            return PolicyDecision(Action.RA, "model: rate adaptation suffices")
        return PolicyDecision(Action.BA, "model: beam adaptation required")

    @staticmethod
    def _feature_rejection(observation: Observation) -> Optional[str]:
        """Why the feature vector cannot be classified on, or ``None``."""
        if observation.features is None:
            return "no features despite ACK"
        values = observation.features.to_array()
        if not np.isfinite(values).all():
            return "non-finite feature values"
        if not 0.0 <= observation.features.cdr <= 1.0:
            return f"CDR feature {observation.features.cdr:.3f} out of range"
        return None

    def _degrade(self, observation: Observation, why: str) -> PolicyDecision:
        """Fall back to the missing-ACK rule, keeping the evidence trail."""
        rule = self._missing_ack_rule(observation.degraded())
        return PolicyDecision(
            rule.action, f"{why}; missing-ACK rule: {rule.reason}", fallback=True
        )

    def _missing_ack_rule(self, observation: Observation) -> PolicyDecision:
        """§7's fallback when no metrics arrive.

        Below MCS 6 the dataset says BA wins 92 % of the time → BA.  At
        MCS ≥ 6 it is a coin flip (48/52), so the tie-breaker is the BA
        overhead: sweep first only when sweeping is cheap.
        """
        if observation.current_mcs < self.config.missing_ack_mcs_threshold:
            return PolicyDecision(Action.BA, "missing ACK at low MCS: BA wins 92%")
        if observation.ba_overhead_s < self.config.ba_overhead_threshold_s:
            return PolicyDecision(Action.BA, "missing ACK, cheap sweep: BA first")
        return PolicyDecision(Action.RA, "missing ACK, expensive sweep: RA first")


@dataclass
class ThresholdClassifier:
    """A hand-tuned, non-learned stand-in classifier.

    Encodes the per-metric thresholds §6.1 identified (SNR drop > 7 dB ⇒
    BA; infinite/zero ToF ⇒ BA; negative ToF difference ⇒ RA; …).  It
    exists as the ablation baseline showing why the learned model is
    needed — the paper's whole §6.1 argument is that these thresholds do
    not compose into an accurate rule.
    """

    snr_drop_ba_db: float = 7.0
    na_snr_band_db: float = 2.0
    tof_zero_band_ns: float = 0.5

    def predict(self, features: np.ndarray) -> np.ndarray:
        from repro.core.metrics import TOF_INF_SENTINEL_NS

        features = np.atleast_2d(features)
        labels = []
        for row in features:
            snr_diff, tof_diff = row[0], row[1]
            cdr = row[5]
            if abs(snr_diff) < self.na_snr_band_db and cdr > 0.9:
                labels.append(Action.NA.value)
            elif snr_diff > self.snr_drop_ba_db:
                labels.append(Action.BA.value)
            elif tof_diff >= TOF_INF_SENTINEL_NS - 1e-9:
                labels.append(Action.BA.value)
            elif abs(tof_diff) < self.tof_zero_band_ns:
                labels.append(Action.BA.value)
            elif tof_diff < 0:
                labels.append(Action.RA.value)
            else:
                labels.append(Action.BA.value)
        return np.array(labels)
