"""Link-adaptation policies: the decision layer the §8 evaluation compares.

A policy answers one question at each decision point: given what the
transmitter can observe (the ACK-borne PHY metric deltas, or the fact that
the ACK went missing), should it do nothing, trigger RA, or trigger BA?

* :class:`RAFirstPolicy` — what COTS devices do today: on a broken MCS,
  always try RA first (§2, §8.1).
* :class:`BAFirstPolicy` — the patent-suggested alternative: always sweep
  first, then RA (§2 [14]).
* :class:`LiBRA` (in :mod:`repro.core.libra`) — the learning-based policy.
* The oracles live in :mod:`repro.sim.oracle`: they peek at ground truth
  and are upper bounds, not implementable policies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.core.ground_truth import Action
from repro.core.metrics import FeatureVector


@dataclass(frozen=True)
class Observation:
    """What the Tx-side policy can see at a decision point.

    Attributes:
        features: PHY metric deltas carried back on the last Block ACK;
            ``None`` exactly when the ACK is missing.
        ack_missing: The last aggregated frame produced no Block ACK.
        current_mcs: The MCS in use.
        current_mcs_working: Whether the current MCS still satisfies the
            §5.2 working predicate (the trigger the simple heuristics use).
        ba_overhead_s: The configured BA overhead — a protocol constant the
            policy may consult (LiBRA's missing-ACK rule does).
    """

    features: Optional[FeatureVector]
    ack_missing: bool
    current_mcs: int
    current_mcs_working: bool
    ba_overhead_s: float

    def degraded(self) -> "Observation":
        """This observation with its feedback-borne content discarded.

        The hardened feedback path lands here when the ACK arrived but its
        metrics failed sanitization (non-finite, out of range, stale): the
        transmitter has no trustworthy fresh information, which is exactly
        the missing-ACK situation of §7 — so policies are asked again with
        the feedback treated as absent and the link presumed not working.
        """
        return Observation(
            features=None,
            ack_missing=True,
            current_mcs=self.current_mcs,
            current_mcs_working=False,
            ba_overhead_s=self.ba_overhead_s,
        )


@dataclass(frozen=True)
class PolicyDecision:
    """A policy's answer plus a short rationale (useful in logs/tests).

    ``fallback`` marks decisions the policy produced by *degrading* to the
    §7 missing-ACK rule — rejected features, a classifier error, garbage
    model output — rather than by its normal decision path.
    """

    action: Action
    reason: str = ""
    fallback: bool = False


class LinkAdaptationPolicy(abc.ABC):
    """Base class for all decision policies.

    Policies whose decisions are pure per-observation functions may expose
    an optional ``decide_batch(observations) -> list[PolicyDecision]``; the
    batched evaluation engine uses it — when defined on the policy's own
    class, never reached through delegation wrappers — to amortize model
    inference across a whole entry list.  The base class deliberately does
    not define it: stateful or fault-wrapped policies must keep the
    sequential per-observation path so call order (and any injected
    randomness) matches the scalar engine exactly.
    """

    name: str = "policy"

    @abc.abstractmethod
    def decide(self, observation: Observation) -> PolicyDecision:
        """Pick NA / RA / BA for this decision point."""

    def reset(self) -> None:
        """Clear any per-flow state (default: stateless)."""


def _decide_each(
    policy: LinkAdaptationPolicy, observations: list[Observation]
) -> list[PolicyDecision]:
    """Batch façade for stateless policies: decide one by one, in order."""
    return [policy.decide(observation) for observation in observations]


class RAFirstPolicy(LinkAdaptationPolicy):
    """Trigger RA whenever the current MCS stops working (COTS behaviour).

    BA is reached only through RA failure — the simulation engine performs
    the BA fallback when a repair round finds no working MCS, so the policy
    itself never answers BA.
    """

    name = "RA First"

    def decide(self, observation: Observation) -> PolicyDecision:
        if observation.ack_missing or not observation.current_mcs_working:
            return PolicyDecision(Action.RA, "link degraded: COTS devices try rates first")
        return PolicyDecision(Action.NA, "current MCS still working")

    def decide_batch(self, observations: list[Observation]) -> list[PolicyDecision]:
        return _decide_each(self, observations)


class BAFirstPolicy(LinkAdaptationPolicy):
    """Trigger BA (then RA) whenever the current MCS stops working ([14])."""

    name = "BA First"

    def decide(self, observation: Observation) -> PolicyDecision:
        if observation.ack_missing or not observation.current_mcs_working:
            return PolicyDecision(Action.BA, "link degraded: sweep first per [14]")
        return PolicyDecision(Action.NA, "current MCS still working")

    def decide_batch(self, observations: list[Observation]) -> list[PolicyDecision]:
        return _decide_each(self, observations)


class StaticPolicy(LinkAdaptationPolicy):
    """Never adapt — the locked-sector baseline of the §3 experiments."""

    name = "Static"

    def decide(self, observation: Observation) -> PolicyDecision:
        return PolicyDecision(Action.NA, "adaptation disabled")
