"""The seven PHY-layer features of §6.1.

Each dataset entry describes the *change* of the link between an initial
state (before the impairment) and the current state (after it), always
measured on the beam pair that was best at the initial state — that is the
only view the transmitter has before deciding which adaptation mechanism to
trigger:

========================  ==================================================
feature                   definition (paper §6.1)
========================  ==================================================
``snr_diff_db``           SNR(initial) − SNR(current), 1 s averages
``tof_diff_ns``           ToF(initial) − ToF(current); negative under
                          backward motion; sentinel when either is infinite
``noise_diff_db``         NoiseLevel(current) − NoiseLevel(initial)
``pdp_similarity``        Pearson correlation of aligned PDPs
``csi_similarity``        Pearson correlation of FFT-PDPs (CSI estimate)
``cdr``                   codeword delivery ratio at the initial best MCS,
                          measured at the current state
``initial_mcs``           the highest-throughput working MCS at the
                          initial state
========================  ==================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.phy.pdp import csi_similarity, pdp_similarity
from repro.testbed.traces import StateMeasurement

FEATURE_NAMES = (
    "snr_diff_db",
    "tof_diff_ns",
    "noise_diff_db",
    "pdp_similarity",
    "csi_similarity",
    "cdr",
    "initial_mcs",
)

TOF_DIFF_CLIP_NS = 20.0
"""ToF differences are clipped to the ±20 ns range the paper plots."""

TOF_INF_SENTINEL_NS = 25.0
"""Encodes 'X60 reported infinity' — outside the clip range so tree-based
models can branch on it (paper: infinite ToF ⇒ BA is always needed)."""


@dataclass(frozen=True)
class FeatureVector:
    """One entry's feature values, in :data:`FEATURE_NAMES` order."""

    snr_diff_db: float
    tof_diff_ns: float
    noise_diff_db: float
    pdp_similarity: float
    csi_similarity: float
    cdr: float
    initial_mcs: int

    def to_array(self) -> np.ndarray:
        return np.array(
            [
                self.snr_diff_db,
                self.tof_diff_ns,
                self.noise_diff_db,
                self.pdp_similarity,
                self.csi_similarity,
                self.cdr,
                float(self.initial_mcs),
            ]
        )

    @classmethod
    def from_array(cls, values: np.ndarray) -> "FeatureVector":
        if len(values) != len(FEATURE_NAMES):
            raise ValueError(f"expected {len(FEATURE_NAMES)} features, got {len(values)}")
        return cls(
            snr_diff_db=float(values[0]),
            tof_diff_ns=float(values[1]),
            noise_diff_db=float(values[2]),
            pdp_similarity=float(values[3]),
            csi_similarity=float(values[4]),
            cdr=float(values[5]),
            initial_mcs=int(round(values[6])),
        )


def tof_difference_ns(initial_tof_ns: float, current_tof_ns: float) -> float:
    """ToF(initial) − ToF(current) with the paper's infinity handling.

    Backward motion makes the current ToF larger, so the difference goes
    negative (matching Fig. 5's reading).  Any infinite reading collapses
    to the sentinel: the measurement failed, which itself signals a broken
    beam (§6.1: "when the ToF difference is 0 or infinity, BA is always
    needed").
    """
    if math.isinf(initial_tof_ns) or math.isinf(current_tof_ns):
        return TOF_INF_SENTINEL_NS
    diff = initial_tof_ns - current_tof_ns
    return min(TOF_DIFF_CLIP_NS, max(-TOF_DIFF_CLIP_NS, diff))


def compute_features(
    initial: StateMeasurement, current_same_pair: StateMeasurement
) -> FeatureVector:
    """Build the feature vector from two measurements on the same beam pair.

    Raises ``ValueError`` when the two measurements are not on the same
    beam pair or the initial state has no working MCS (a dead initial link
    cannot produce a meaningful entry — the paper's initial states are by
    construction working links).
    """
    if (initial.tx_beam, initial.rx_beam) != (
        current_same_pair.tx_beam,
        current_same_pair.rx_beam,
    ):
        raise ValueError("feature extraction requires measurements on the same beam pair")
    initial_mcs = initial.best_mcs()
    if initial_mcs is None:
        raise ValueError("initial state has no working MCS")
    return FeatureVector(
        snr_diff_db=initial.snr_db - current_same_pair.snr_db,
        tof_diff_ns=tof_difference_ns(initial.tof_ns, current_same_pair.tof_ns),
        noise_diff_db=current_same_pair.noise_dbm - initial.noise_dbm,
        pdp_similarity=pdp_similarity(initial.pdp, current_same_pair.pdp),
        csi_similarity=csi_similarity(initial.pdp, current_same_pair.pdp),
        cdr=float(current_same_pair.cdr[initial_mcs]),
        initial_mcs=initial_mcs,
    )
