"""Frame-based rate adaptation (§7, Algorithm 1's RA pieces).

Two responsibilities:

1. **Link repair** (:meth:`RateAdaptation.repair`): starting from the MCS
   in use, probe downward one aggregated frame per MCS until the first
   *working* MCS appears, then settle on the best-throughput working MCS
   found along the way.  If nothing works, the caller must fall back to BA
   followed by another repair round (the ground truth and simulator both
   account for that).

2. **Upward probing** (:meth:`RateAdaptation.frames`): once settled, probe
   the next-higher MCS whenever the recent CDR clears an opportunistic
   threshold (inspired by RRAA's ORI rule), with an adaptive probing
   interval ``T = T0 · min(2^k, 2^5)`` where ``k`` counts consecutive
   failed probes (inspired by MiRA) — §7's exact construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.constants import (
    PROBE_BACKOFF_CAP,
    PROBE_INTERVAL_MIN_FRAMES,
    X60_NUM_MCS,
)
from repro.core.mcs import X60_MCS_SET, MCSSet
from repro.testbed.traces import McsTraces


def cdr_ori_threshold(mcs: int, mcs_set: MCSSet = X60_MCS_SET) -> float:
    """Opportunistic-rate-increase threshold for probing ``mcs + 1``.

    Probing the next MCS is worthwhile only if the goodput it could reach
    can beat the current one; assuming a near-perfect next-step CDR of 0.9,
    the current CDR must exceed ``0.9 · rate(mcs+1)⁻¹ · rate(mcs)``
    inverted — i.e. CDR_ORI = 0.9 · rate(mcs) / rate(mcs+1) is the break-
    even point (following the spirit of RRAA's P_ORI).
    """
    if mcs >= len(mcs_set) - 1:
        return float("inf")  # no higher MCS to probe
    return 0.9 * mcs_set.rate_mbps(mcs) / mcs_set.rate_mbps(mcs + 1)


@dataclass
class RAResult:
    """Outcome of one repair round."""

    found_mcs: Optional[int]
    frames_spent: int
    bytes_during_search: float
    settled_throughput_mbps: float

    @property
    def failed(self) -> bool:
        return self.found_mcs is None


@dataclass
class FrameOutcome:
    """One simulated frame after the link has settled."""

    mcs: int
    throughput_mbps: float
    probing: bool


@dataclass(frozen=True)
class RepairLadder:
    """The point-independent skeleton of one :meth:`RateAdaptation.repair`.

    A repair round's *trajectory* — which MCSs it probes, where it settles,
    how many frames it burns — depends only on the traces and the starting
    MCS, never on the frame aggregation time.  The batched evaluation path
    computes the ladder once per (entry, pair) and converts it into an
    :class:`RAResult` per operating point with :meth:`search_bytes`, whose
    accumulation order matches ``repair()`` term for term so the bytes are
    bit-identical.
    """

    start_mcs: int
    found_mcs: Optional[int]
    frames_spent: int
    probed_throughputs_mbps: tuple[float, ...]
    settled_throughput_mbps: float

    @property
    def failed(self) -> bool:
        return self.found_mcs is None

    def search_bytes(self, frame_time_s: float) -> float:
        """Data delivered by the probe frames at one frame time."""
        total = 0.0
        for tput in self.probed_throughputs_mbps:
            total += tput * 1e6 / 8.0 * frame_time_s
        return total

    def result(self, frame_time_s: float) -> RAResult:
        return RAResult(
            self.found_mcs,
            self.frames_spent,
            self.search_bytes(frame_time_s),
            self.settled_throughput_mbps,
        )


def repair_ladder(
    traces: McsTraces, start_mcs: int, initial_throughput_mbps: float = 0.0
) -> RepairLadder:
    """Run Algorithm 1's RA() scan and record its ladder.

    Mirrors :meth:`RateAdaptation.repair` exactly, minus the per-point
    byte accounting: the probed-MCS sequence and the settling decision are
    frame-time-free.
    """
    if not 0 <= start_mcs < X60_NUM_MCS:
        raise ValueError(f"start_mcs {start_mcs} out of range")
    frames = 0
    probed: list[float] = []
    max_tput = initial_throughput_mbps
    best_mcs: Optional[int] = None
    for mcs in range(start_mcs, -1, -1):
        frames += 1
        tput = float(traces.throughput_mbps[mcs])
        probed.append(tput)
        if tput < max_tput:
            break
        max_tput = tput
        if RateAdaptation._is_working(traces, mcs):
            best_mcs = mcs
    settled = 0.0 if best_mcs is None else float(traces.throughput_mbps[best_mcs])
    return RepairLadder(start_mcs, best_mcs, frames, tuple(probed), settled)


_STEADY_RUNS_MAX_FRAMES = 1_000_000
"""Safety bound for the cycle search; real dynamics recur within a few
hundred frames (the probe interval saturates at T0 · 2^5 and the MCS can
only move up eight times)."""


def steady_rate_runs(
    traces: McsTraces,
    settled_mcs: int,
    mcs_set: Optional[MCSSet] = None,
    probe_interval_min: int = PROBE_INTERVAL_MIN_FRAMES,
    probe_backoff_cap: int = PROBE_BACKOFF_CAP,
) -> tuple[list[float], list[float]]:
    """The per-frame throughput sequence of :meth:`RateAdaptation.frames`,
    compressed to ``(transient_prefix, repeating_cycle)``.

    The steady-state dynamics are eventually periodic: the probe interval
    saturates at ``T0 · cap``, the current MCS is monotone non-decreasing,
    and within one trace the per-MCS values never change — so the machine
    state ``(current, interval, since_probe, backoff)`` must recur.  The
    first recurrence splits the emitted rates into a transient prefix and
    a cycle; frame ``i``'s rate is ``prefix[i]`` while ``i < len(prefix)``
    and ``cycle[(i - len(prefix)) % len(cycle)]`` after, reproducing the
    generator's output exactly for any horizon.
    """
    mcs_set = X60_MCS_SET if mcs_set is None else mcs_set
    rates: list[float] = []
    seen: dict[tuple, int] = {}
    current = settled_mcs
    failed_probes = 0
    interval = probe_interval_min
    since_probe = 0
    while len(rates) <= _STEADY_RUNS_MAX_FRAMES:
        backoff = min(2 ** failed_probes, probe_backoff_cap)
        # Two clamps keep the state space finite: once the backoff
        # saturates the failure count no longer matters, and once
        # ``since_probe`` reaches the interval the only thing the machine
        # checks is ``since_probe >= interval`` — when the probe gate stays
        # closed (top MCS, or CDR under the ORI threshold) the counter
        # would otherwise grow forever without changing behaviour.
        state = (current, interval, min(since_probe, interval),
                 backoff if backoff < probe_backoff_cap else -1)
        start = seen.get(state)
        if start is not None:
            return rates[:start], rates[start:]
        seen[state] = len(rates)
        probe_now = (
            current < len(mcs_set) - 1
            and since_probe >= interval
            and traces.cdr[current] > cdr_ori_threshold(current, mcs_set)
        )
        if probe_now:
            higher = current + 1
            tput_higher = float(traces.throughput_mbps[higher])
            rates.append(tput_higher)
            since_probe = 0
            if tput_higher > float(traces.throughput_mbps[current]):
                current = higher
                failed_probes = 0
                interval = probe_interval_min
            else:
                failed_probes += 1
                interval = probe_interval_min * min(
                    2 ** failed_probes, probe_backoff_cap
                )
        else:
            rates.append(float(traces.throughput_mbps[current]))
            since_probe += 1
    raise RuntimeError("steady-state dynamics failed to recur")  # pragma: no cover


@dataclass
class RateAdaptation:
    """The §7 RA algorithm over recorded per-MCS traces.

    The trace-driven design mirrors the paper's evaluation: within one
    (state, beam pair) the per-MCS CDR/throughput values are stationary,
    so the algorithm's dynamics reduce to which MCS it transmits at each
    frame and how often it wastes frames probing.
    """

    frame_time_s: float
    mcs_set: MCSSet = field(default_factory=lambda: X60_MCS_SET)
    probe_interval_min: int = PROBE_INTERVAL_MIN_FRAMES
    probe_backoff_cap: int = PROBE_BACKOFF_CAP

    def repair(
        self, traces: McsTraces, start_mcs: int, initial_throughput_mbps: float = 0.0
    ) -> RAResult:
        """Probe downward from ``start_mcs`` per Algorithm 1's RA().

        The scan descends while the measured throughput keeps improving;
        when it drops below the best seen so far, RA settles at the
        previous (best) MCS if that MCS is working.  Each probed MCS costs
        one frame which still delivers data at that MCS's observed
        throughput (RA uses *data* frames — the reason its recovery
        throughput is "suboptimal but not necessarily 0", §5.2).  A failed
        repair (no working MCS anywhere) returns ``found_mcs=None``; the
        caller falls back to BA + a second RA round.
        """
        if not 0 <= start_mcs < X60_NUM_MCS:
            raise ValueError(f"start_mcs {start_mcs} out of range")
        frames = 0
        search_bytes = 0.0
        max_tput = initial_throughput_mbps
        best_mcs: Optional[int] = None
        for mcs in range(start_mcs, -1, -1):
            frames += 1
            tput = float(traces.throughput_mbps[mcs])
            search_bytes += tput * 1e6 / 8.0 * self.frame_time_s
            if tput < max_tput:
                # Throughput turned down: settle at the previous MCS.
                break
            max_tput = tput
            if self._is_working(traces, mcs):
                best_mcs = mcs
        if best_mcs is None:
            return RAResult(None, frames, search_bytes, 0.0)
        return RAResult(
            best_mcs, frames, search_bytes, float(traces.throughput_mbps[best_mcs])
        )

    @staticmethod
    def _is_working(traces: McsTraces, mcs: int) -> bool:
        from repro.constants import WORKING_MCS_MIN_CDR, WORKING_MCS_MIN_THROUGHPUT_MBPS

        return (
            traces.cdr[mcs] > WORKING_MCS_MIN_CDR
            and traces.throughput_mbps[mcs] > WORKING_MCS_MIN_THROUGHPUT_MBPS
        )

    def frames(
        self, traces: McsTraces, settled_mcs: int, num_frames: int
    ) -> Iterator[FrameOutcome]:
        """Simulate ``num_frames`` frames of steady-state operation.

        Upward probes fire every T frames; a probe transmits one frame at
        ``mcs+1``.  A failed probe (lower throughput than the settled MCS)
        doubles T up to the cap; a successful one moves the settled MCS up
        and resets T.
        """
        current = settled_mcs
        failed_probes = 0
        interval = self.probe_interval_min
        since_probe = 0
        for _ in range(num_frames):
            probe_now = (
                current < len(self.mcs_set) - 1
                and since_probe >= interval
                and traces.cdr[current] > cdr_ori_threshold(current, self.mcs_set)
            )
            if probe_now:
                higher = current + 1
                tput_higher = float(traces.throughput_mbps[higher])
                yield FrameOutcome(higher, tput_higher, probing=True)
                since_probe = 0
                if tput_higher > float(traces.throughput_mbps[current]):
                    current = higher
                    failed_probes = 0
                    interval = self.probe_interval_min
                else:
                    failed_probes += 1
                    interval = self.probe_interval_min * min(
                        2 ** failed_probes, self.probe_backoff_cap
                    )
            else:
                yield FrameOutcome(current, float(traces.throughput_mbps[current]), False)
                since_probe += 1

    def steady_state_bytes(
        self, traces: McsTraces, settled_mcs: int, duration_s: float
    ) -> float:
        """Bytes delivered over ``duration_s`` of steady-state operation,
        including the probing tax."""
        num_frames = max(0, int(duration_s / self.frame_time_s))
        total = 0.0
        for outcome in self.frames(traces, settled_mcs, num_frames):
            total += outcome.throughput_mbps * 1e6 / 8.0 * self.frame_time_s
        # Fractional tail frame at the settled rate.
        remainder = duration_s - num_frames * self.frame_time_s
        if remainder > 0:
            total += float(traces.throughput_mbps[settled_mcs]) * 1e6 / 8.0 * remainder
        return total
