"""Blockage-pattern learning over long horizons — the paper's named
future work.

§7: "longer observation windows may have some benefits, e.g., they may
allow the transmitter to learn blockage patterns and make better decisions
in the future.  We believe that learning link status patterns over longer
periods of time is an interesting avenue for future investigation."

This module is that investigation's simplest useful instance: a detector
for *periodic* blockage (a person pacing through the LOS, a rotating
machine, a periodic forklift route).  It records link-break timestamps,
estimates the dominant inter-break period when one exists, and predicts
the next break so the controller can pre-arm — e.g. pre-emptively sweep or
pre-drop the MCS just before the expected hit instead of paying the full
missing-ACK recovery every cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class BlockagePatternLearner:
    """Detects periodicity in a stream of link-break timestamps.

    Args:
        max_history: Breaks remembered (sliding window).
        min_breaks: Breaks needed before a period is ever reported.
        tolerance: Maximum relative spread of inter-break intervals (their
            coefficient of variation) for the pattern to count as
            periodic.
    """

    max_history: int = 32
    min_breaks: int = 4
    tolerance: float = 0.2
    _breaks: list = field(default_factory=list, repr=False)

    def record_break(self, time_s: float) -> None:
        """Register one link break (timestamps must be non-decreasing)."""
        if self._breaks and time_s < self._breaks[-1]:
            raise ValueError("break timestamps must be non-decreasing")
        self._breaks.append(float(time_s))
        if len(self._breaks) > self.max_history:
            self._breaks = self._breaks[-self.max_history:]

    @property
    def num_breaks(self) -> int:
        return len(self._breaks)

    def period_s(self) -> Optional[float]:
        """The dominant inter-break period, or ``None`` if not periodic."""
        if len(self._breaks) < self.min_breaks:
            return None
        intervals = np.diff(self._breaks)
        intervals = intervals[intervals > 0]
        if intervals.size < self.min_breaks - 1:
            return None
        mean = float(intervals.mean())
        if mean <= 0:
            return None
        spread = float(intervals.std()) / mean
        if spread > self.tolerance:
            return None
        return mean

    def next_break_eta_s(self, now_s: float) -> Optional[float]:
        """Seconds until the predicted next break, or ``None``.

        If the prediction is already overdue the next cycle is assumed
        (the blocker may have been missed once); returns a value in
        ``[0, period)``.
        """
        period = self.period_s()
        if period is None or not self._breaks:
            return None
        elapsed = now_s - self._breaks[-1]
        if elapsed < 0:
            raise ValueError("now_s precedes the last recorded break")
        remaining = period - (elapsed % period)
        return remaining % period

    def should_prearm(self, now_s: float, guard_s: float = 0.1) -> bool:
        """True when a predicted break is within ``guard_s`` — the hook a
        controller uses to pre-emptively adapt."""
        eta = self.next_break_eta_s(now_s)
        return eta is not None and eta <= guard_s

    def reset(self) -> None:
        self._breaks.clear()
