"""Sliding observation windows for the Tx-side metric pipeline (§7).

LiBRA makes a decision every two frames by comparing the metrics averaged
over the *current* observation window against the *previous* window
(Algorithm 1's ``updateMetrics(frameID, frameID-1)`` /
``classifyBaRaNa(metrics, prev_metrics)``).  This module turns per-frame
ACK feedback into those windowed snapshots and into the
:class:`~repro.core.metrics.FeatureVector` the classifier consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.metrics import FeatureVector, tof_difference_ns
from repro.phy.pdp import csi_similarity, pdp_similarity


@dataclass(frozen=True)
class FrameFeedback:
    """What one Block ACK carries back to the transmitter."""

    snr_db: float
    noise_dbm: float
    tof_ns: float
    pdp: np.ndarray
    cdr: float


@dataclass
class WindowSnapshot:
    """Averages of one completed observation window."""

    snr_db: float
    noise_dbm: float
    tof_ns: float
    pdp: np.ndarray
    cdr: float
    frames: int


@dataclass
class MetricWindow:
    """Accumulates per-frame feedback into fixed-length window snapshots.

    ``frames_per_window`` follows the §7 design: 2 frames in X60 (20 ms
    windows), 2 frames in 802.11ad (4 ms) — the constant is frames, the
    wall-clock follows the FAT.
    """

    frames_per_window: int = 2
    _snr: list = field(default_factory=list, repr=False)
    _noise: list = field(default_factory=list, repr=False)
    _tof: list = field(default_factory=list, repr=False)
    _pdp: list = field(default_factory=list, repr=False)
    _cdr: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.frames_per_window < 1:
            raise ValueError("a window needs at least one frame")

    def push(self, feedback: FrameFeedback) -> Optional[WindowSnapshot]:
        """Add one frame's feedback; returns a snapshot when the window
        completes (and resets for the next window)."""
        self._snr.append(feedback.snr_db)
        self._noise.append(feedback.noise_dbm)
        self._tof.append(feedback.tof_ns)
        self._pdp.append(feedback.pdp)
        self._cdr.append(feedback.cdr)
        if len(self._snr) < self.frames_per_window:
            return None
        finite_tofs = [t for t in self._tof if not math.isinf(t)]
        snapshot = WindowSnapshot(
            snr_db=float(np.mean(self._snr)),
            noise_dbm=float(np.mean(self._noise)),
            tof_ns=float(np.mean(finite_tofs)) if finite_tofs else math.inf,
            pdp=np.mean(np.stack(self._pdp), axis=0),
            cdr=float(np.mean(self._cdr)),
            frames=len(self._snr),
        )
        self.reset()
        return snapshot

    def reset(self) -> None:
        self._snr.clear()
        self._noise.clear()
        self._tof.clear()
        self._pdp.clear()
        self._cdr.clear()


def features_between(
    previous: WindowSnapshot, current: WindowSnapshot, current_mcs: int
) -> FeatureVector:
    """The §6.1 feature deltas between two consecutive windows.

    ``previous`` plays the paper's "initial state", ``current`` the "new
    state"; ``current_mcs`` stands in for the initial best MCS (the MCS in
    use when the window closed).
    """
    return FeatureVector(
        snr_diff_db=previous.snr_db - current.snr_db,
        tof_diff_ns=tof_difference_ns(previous.tof_ns, current.tof_ns),
        noise_diff_db=current.noise_dbm - previous.noise_dbm,
        pdp_similarity=pdp_similarity(previous.pdp, current.pdp),
        csi_similarity=csi_similarity(previous.pdp, current.pdp),
        cdr=current.cdr,
        initial_mcs=current_mcs,
    )
