"""Sliding observation windows for the Tx-side metric pipeline (§7).

LiBRA makes a decision every two frames by comparing the metrics averaged
over the *current* observation window against the *previous* window
(Algorithm 1's ``updateMetrics(frameID, frameID-1)`` /
``classifyBaRaNa(metrics, prev_metrics)``).  This module turns per-frame
ACK feedback into those windowed snapshots and into the
:class:`~repro.core.metrics.FeatureVector` the classifier consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.metrics import FeatureVector, tof_difference_ns
from repro.phy.pdp import csi_similarity, pdp_similarity


@dataclass(frozen=True)
class FrameFeedback:
    """What one Block ACK carries back to the transmitter.

    ``timestamp_s`` is when the Rx *measured* the metrics (session clock);
    ``nan`` means unknown.  A healthy feedback path stamps each frame as it
    arrives, so receipt time ≈ measurement time — a large gap means the
    metrics are stale (a replayed or delayed report) and the staleness
    window in :class:`MetricWindow` refuses to classify on them.
    """

    snr_db: float
    noise_dbm: float
    tof_ns: float
    pdp: np.ndarray
    cdr: float
    timestamp_s: float = math.nan


@dataclass
class WindowSnapshot:
    """Averages of one completed observation window."""

    snr_db: float
    noise_dbm: float
    tof_ns: float
    pdp: np.ndarray
    cdr: float
    frames: int


@dataclass
class MetricWindow:
    """Accumulates per-frame feedback into fixed-length window snapshots.

    ``frames_per_window`` follows the §7 design: 2 frames in X60 (20 ms
    windows), 2 frames in 802.11ad (4 ms) — the constant is frames, the
    wall-clock follows the FAT.

    ``max_age_s`` (optional) is the staleness window: when :meth:`push` is
    given the current session clock, samples whose measurement timestamp is
    older than this are *expired* — rejected on entry or evicted from the
    buffer — instead of being averaged into a snapshot the classifier then
    acts on.  ``stale_rejected`` counts the discarded samples.
    """

    frames_per_window: int = 2
    max_age_s: Optional[float] = None
    stale_rejected: int = field(default=0, repr=False)
    _snr: list = field(default_factory=list, repr=False)
    _noise: list = field(default_factory=list, repr=False)
    _tof: list = field(default_factory=list, repr=False)
    _pdp: list = field(default_factory=list, repr=False)
    _cdr: list = field(default_factory=list, repr=False)
    _times: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.frames_per_window < 1:
            raise ValueError("a window needs at least one frame")
        if self.max_age_s is not None and self.max_age_s <= 0:
            raise ValueError("staleness window must be positive")

    def _is_stale(self, timestamp_s: float, now_s: float) -> bool:
        # nan timestamps (age unknown) never expire: staleness is an
        # opt-in check, not a reason to drop healthy legacy feedback.
        return (
            self.max_age_s is not None
            and math.isfinite(timestamp_s)
            and now_s - timestamp_s > self.max_age_s
        )

    def _evict_stale(self, now_s: float) -> None:
        while self._times and self._is_stale(self._times[0], now_s):
            for samples in (self._snr, self._noise, self._tof, self._pdp,
                            self._cdr, self._times):
                samples.pop(0)
            self.stale_rejected += 1

    def push(
        self, feedback: FrameFeedback, now_s: Optional[float] = None
    ) -> Optional[WindowSnapshot]:
        """Add one frame's feedback; returns a snapshot when the window
        completes (and resets for the next window).

        With ``now_s`` (the session clock) and a configured ``max_age_s``,
        stale feedback is dropped and already-buffered samples that aged
        out are evicted, so a window never mixes fresh and expired metrics.
        """
        if now_s is not None:
            if self._is_stale(feedback.timestamp_s, now_s):
                self.stale_rejected += 1
                return None
            self._evict_stale(now_s)
        self._snr.append(feedback.snr_db)
        self._noise.append(feedback.noise_dbm)
        self._tof.append(feedback.tof_ns)
        self._pdp.append(feedback.pdp)
        self._cdr.append(feedback.cdr)
        self._times.append(feedback.timestamp_s)
        if len(self._snr) < self.frames_per_window:
            return None
        finite_tofs = [t for t in self._tof if not math.isinf(t)]
        snapshot = WindowSnapshot(
            snr_db=float(np.mean(self._snr)),
            noise_dbm=float(np.mean(self._noise)),
            tof_ns=float(np.mean(finite_tofs)) if finite_tofs else math.inf,
            pdp=np.mean(np.stack(self._pdp), axis=0),
            cdr=float(np.mean(self._cdr)),
            frames=len(self._snr),
        )
        self.reset()
        return snapshot

    def reset(self) -> None:
        self._snr.clear()
        self._noise.clear()
        self._tof.clear()
        self._pdp.clear()
        self._cdr.clear()
        self._times.clear()


# ---------------------------------------------------------------------------
# Metric sanitization (the hardened feedback path)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricRanges:
    """Physically plausible bounds for ACK-borne metrics.

    Anything outside these cannot be a real Rx measurement — it is a
    corrupted report (bit errors in the piggyback field, a firmware bug,
    an injected fault) and must not reach the classifier.  Bounds are
    deliberately loose: they reject the impossible, not the unusual.
    """

    snr_db: tuple[float, float] = (-30.0, 90.0)
    noise_dbm: tuple[float, float] = (-150.0, -20.0)
    cdr: tuple[float, float] = (0.0, 1.0)


DEFAULT_METRIC_RANGES = MetricRanges()


def feedback_rejection(
    feedback: FrameFeedback, ranges: MetricRanges = DEFAULT_METRIC_RANGES
) -> Optional[str]:
    """Why this feedback must be rejected, or ``None`` when it is clean.

    Rejected feedback is treated exactly like a missing Block ACK (§7's
    rule): no fresh metrics arrived that can be trusted.  Checks, in
    order: finite SNR/noise/CDR within :class:`MetricRanges`; a ToF that
    is non-negative and not NaN (``inf`` is the legitimate §6.1 sentinel
    for an unmeasurable ToF); a PDP that is non-empty, finite, and
    non-negative.
    """
    if not math.isfinite(feedback.snr_db):
        return f"non-finite SNR {feedback.snr_db!r}"
    lo, hi = ranges.snr_db
    if not lo <= feedback.snr_db <= hi:
        return f"SNR {feedback.snr_db:.1f} dB outside [{lo:g}, {hi:g}]"
    if not math.isfinite(feedback.noise_dbm):
        return f"non-finite noise level {feedback.noise_dbm!r}"
    lo, hi = ranges.noise_dbm
    if not lo <= feedback.noise_dbm <= hi:
        return f"noise {feedback.noise_dbm:.1f} dBm outside [{lo:g}, {hi:g}]"
    if not math.isfinite(feedback.cdr):
        return f"non-finite CDR {feedback.cdr!r}"
    lo, hi = ranges.cdr
    if not lo <= feedback.cdr <= hi:
        return f"CDR {feedback.cdr:.3f} outside [{lo:g}, {hi:g}]"
    if math.isnan(feedback.tof_ns) or feedback.tof_ns < 0.0:
        return f"invalid ToF {feedback.tof_ns!r} (NaN or negative)"
    pdp = np.asarray(feedback.pdp)
    if pdp.size == 0:
        return "empty PDP"
    if not np.isfinite(pdp).all():
        return "PDP contains non-finite bins"
    if (pdp < 0.0).any():
        return "PDP contains negative power bins"
    return None


def features_between(
    previous: WindowSnapshot, current: WindowSnapshot, current_mcs: int
) -> FeatureVector:
    """The §6.1 feature deltas between two consecutive windows.

    ``previous`` plays the paper's "initial state", ``current`` the "new
    state"; ``current_mcs`` stands in for the initial best MCS (the MCS in
    use when the window closed).
    """
    return FeatureVector(
        snr_diff_db=previous.snr_db - current.snr_db,
        tof_diff_ns=tof_difference_ns(previous.tof_ns, current.tof_ns),
        noise_diff_db=current.noise_dbm - previous.noise_dbm,
        pdp_similarity=pdp_similarity(previous.pdp, current.pdp),
        csi_similarity=csi_similarity(previous.pdp, current.pdp),
        cdr=current.cdr,
        initial_mcs=current_mcs,
    )
