"""Modulation and coding schemes.

Two tables matter for the reproduction: the 9-MCS X60 SC ladder (used for
the dataset and the LiBRA evaluation) and the 12-MCS 802.11ad SC ladder
(used by the COTS motivation study and for rate-scaling in the VR study).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.constants import (
    AD_MCS_SNR_THRESHOLDS_DB,
    AD_MCS_TABLE,
    X60_MCS_SNR_THRESHOLDS_DB,
    X60_MCS_TABLE,
)


@dataclass(frozen=True)
class Mcs:
    """One modulation-and-coding scheme."""

    index: int
    modulation: str
    code_rate: float
    rate_mbps: float
    codeword_bytes: int = 0
    snr_threshold_db: float = 0.0

    @property
    def rate_bps(self) -> float:
        return self.rate_mbps * 1e6


class MCSSet:
    """An ordered ladder of MCSs, lowest-rate first."""

    def __init__(self, mcs_list: Sequence[Mcs], name: str):
        if not mcs_list:
            raise ValueError("MCS set cannot be empty")
        rates = [m.rate_mbps for m in mcs_list]
        if rates != sorted(rates):
            raise ValueError("MCS set must be ordered by increasing rate")
        self._mcs = list(mcs_list)
        self.name = name

    def __len__(self) -> int:
        return len(self._mcs)

    def __getitem__(self, index: int) -> Mcs:
        return self._mcs[index]

    def __iter__(self) -> Iterator[Mcs]:
        return iter(self._mcs)

    @property
    def min_index(self) -> int:
        return self._mcs[0].index

    @property
    def max_index(self) -> int:
        return self._mcs[-1].index

    @property
    def max_rate_mbps(self) -> float:
        """PHY rate of the highest MCS — Th_max in the utility metric."""
        return self._mcs[-1].rate_mbps

    def rate_mbps(self, index: int) -> float:
        return self.by_index(index).rate_mbps

    def by_index(self, index: int) -> Mcs:
        for mcs in self._mcs:
            if mcs.index == index:
                return mcs
        raise KeyError(f"no MCS with index {index} in set {self.name!r}")

    def highest_below_snr(self, snr_db: float, margin_db: float = 0.0) -> Optional[Mcs]:
        """The highest MCS whose SNR threshold clears ``snr_db - margin``.

        This is the direct SNR→MCS mapping older work proposed for 60 GHz
        RA (§2); the paper showed it performs poorly in practice, and we
        carry it as a baseline.
        """
        winner = None
        for mcs in self._mcs:
            if mcs.snr_threshold_db <= snr_db - margin_db:
                winner = mcs
        return winner


X60_MCS_SET = MCSSet(
    [
        Mcs(i, mod, cr, rate, cw_bytes, X60_MCS_SNR_THRESHOLDS_DB[i])
        for (i, mod, cr, rate, cw_bytes) in X60_MCS_TABLE
    ],
    name="x60-sc",
)

AD_MCS_SET = MCSSet(
    [
        Mcs(i, mod, cr, rate, 0, AD_MCS_SNR_THRESHOLDS_DB[j])
        for j, (i, mod, cr, rate) in enumerate(AD_MCS_TABLE)
    ],
    name="802.11ad-sc",
)
