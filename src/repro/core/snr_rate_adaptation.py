"""SNR-mapped rate adaptation — the baseline the paper argues against.

Early 60 GHz work proposed picking the MCS directly from an SNR
measurement via a static SNR→MCS table (§2: "suggested the use of simple
SNR-based RA algorithms via a direct SNR-MCS mapping").  The paper's
position, demonstrated experimentally in its companion work, is that MCS
is only weakly correlated with SNR on real hardware, so SNR mapping picks
wrong rungs while frame-based RA — which measures actual delivered
throughput — does not.

Two real-world error sources are modelled:

* ``estimate_noise_std_db`` — the SNR reading itself is noisy;
* ``threshold_bias_db`` — the device's *actual* decode thresholds differ
  from the nominal table (per-beam hardware variation, temperature,
  codebook imperfections).  This is the weak-correlation effect: the
  mapping is static, the waterfall is not.

The class mirrors :class:`~repro.core.rate_adaptation.RateAdaptation`'s
trace-driven interface so the two are directly comparable on the same
recorded link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.mcs import X60_MCS_SET, MCSSet
from repro.core.rate_adaptation import RAResult
from repro.testbed.traces import McsTraces


@dataclass
class SnrMappedRateAdaptation:
    """Pick the MCS from an SNR reading and a static threshold table.

    Args:
        frame_time_s: Frame duration (for byte accounting parity with the
            frame-based algorithm).
        backoff_margin_db: Safety margin subtracted from the estimate
            before the table lookup (vendors use 1-3 dB).
        estimate_noise_std_db: Noise on each SNR reading.
        threshold_bias_db: Systematic offset between the nominal table and
            the link's true waterfall positions (can be negative).
    """

    frame_time_s: float
    mcs_set: MCSSet = field(default_factory=lambda: X60_MCS_SET)
    backoff_margin_db: float = 1.0
    estimate_noise_std_db: float = 1.0
    threshold_bias_db: float = 0.0

    def select_mcs(self, snr_db: float, rng: Optional[np.random.Generator] = None) -> int:
        """The table lookup: highest MCS whose (biased) threshold clears
        the (noisy) estimate minus the safety margin."""
        estimate = snr_db
        if rng is not None and self.estimate_noise_std_db > 0:
            estimate += float(rng.normal(0.0, self.estimate_noise_std_db))
        usable = estimate - self.backoff_margin_db
        choice = 0
        for index, mcs in enumerate(self.mcs_set):
            if mcs.snr_threshold_db + self.threshold_bias_db <= usable:
                choice = index
        return choice

    def repair(
        self,
        traces: McsTraces,
        snr_db: float,
        rng: Optional[np.random.Generator] = None,
    ) -> RAResult:
        """One-shot repair: read the SNR, jump to the mapped MCS.

        Costs a single frame (the mapping needs no probing — its selling
        point); the catch is that the settled MCS reflects the *table*,
        not the link, so its realised throughput can be far below what a
        probing search would have found, and the chosen MCS may not even
        be working.
        """
        choice = self.select_mcs(snr_db, rng)
        tput = float(traces.throughput_mbps[choice])
        search_bytes = tput * 1e6 / 8.0 * self.frame_time_s
        working = traces.best_mcs(max_mcs=choice) == choice
        if not working:
            return RAResult(None, 1, search_bytes, 0.0)
        return RAResult(choice, 1, search_bytes, tput)

    def steady_state_bytes(
        self,
        traces: McsTraces,
        snr_db: float,
        duration_s: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Bytes delivered holding the mapped MCS for ``duration_s``.

        The mapping re-reads the SNR once per frame, so estimate noise
        makes it dither between adjacent rungs.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        num_frames = int(duration_s / self.frame_time_s)
        total = 0.0
        for _ in range(num_frames):
            choice = self.select_mcs(snr_db, rng)
            total += float(traces.throughput_mbps[choice]) * 1e6 / 8.0 * self.frame_time_s
        remainder = duration_s - num_frames * self.frame_time_s
        if remainder > 0:
            choice = self.select_mcs(snr_db, rng)
            total += float(traces.throughput_mbps[choice]) * 1e6 / 8.0 * remainder
        return total
