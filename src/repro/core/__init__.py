"""The paper's contribution: PHY-metric features, ground-truth labelling,
the RA/BA algorithms, and the LiBRA controller (Algorithm 1)."""

from repro.core.mcs import Mcs, X60_MCS_SET, AD_MCS_SET, MCSSet
from repro.core.metrics import FeatureVector, FEATURE_NAMES, compute_features
from repro.core.ground_truth import (
    GroundTruthConfig,
    Action,
    th_ra,
    th_ba,
    recovery_delay_ra_s,
    recovery_delay_ba_s,
    utility,
    max_delay_s,
    label_entry,
)
from repro.core.rate_adaptation import RateAdaptation, RAResult
from repro.core.beam_adaptation import BeamAdaptation, SweepKind, ba_overhead_s
from repro.core.policies import (
    LinkAdaptationPolicy,
    RAFirstPolicy,
    BAFirstPolicy,
    PolicyDecision,
)
from repro.core.libra import LiBRA, LiBRAConfig
from repro.core.observation import (
    FrameFeedback,
    MetricWindow,
    WindowSnapshot,
    features_between,
)
from repro.core.snr_rate_adaptation import SnrMappedRateAdaptation
from repro.core.history import BlockagePatternLearner

__all__ = [
    "Mcs",
    "MCSSet",
    "X60_MCS_SET",
    "AD_MCS_SET",
    "FeatureVector",
    "FEATURE_NAMES",
    "compute_features",
    "GroundTruthConfig",
    "Action",
    "th_ra",
    "th_ba",
    "recovery_delay_ra_s",
    "recovery_delay_ba_s",
    "utility",
    "max_delay_s",
    "label_entry",
    "RateAdaptation",
    "RAResult",
    "BeamAdaptation",
    "SweepKind",
    "ba_overhead_s",
    "LinkAdaptationPolicy",
    "RAFirstPolicy",
    "BAFirstPolicy",
    "PolicyDecision",
    "LiBRA",
    "LiBRAConfig",
    "FrameFeedback",
    "MetricWindow",
    "WindowSnapshot",
    "features_between",
    "SnrMappedRateAdaptation",
    "BlockagePatternLearner",
]
