"""Figure 13 — multi-impairment timelines: mean recovery delay vs
Oracle-Delay.

Boxplots of ``policy mean recovery delay − Oracle-Delay mean recovery
delay`` over 50 timelines per scenario.  Headline claims:

* "BA First" is near-optimal (<1 ms gap) when the sweep is cheap but
  unacceptable (170-250 ms median gap) when it costs 250 ms;
* "RA First" always recovers fast;
* LiBRA's median gap stays below ~35 ms everywhere.
"""

import numpy as np
import pytest

from repro.sim.batch import BatchFlowSimulator
from repro.sim.engine import SimulationConfig, simulate_timeline
from repro.sim.oracle import OracleDelay
from repro.sim.results import boxplot_stats
from repro.sim.timeline import ScenarioType, TimelineGenerator

CONFIG_GRID = (
    (0.5e-3, 2e-3),
    (250e-3, 2e-3),
    (0.5e-3, 10e-3),
    (250e-3, 10e-3),
)
TIMELINES_PER_SCENARIO = 50


def run_panels(main_dataset, make_libra, heuristics):
    panels = {}
    for overhead, fat in CONFIG_GRID:
        config = SimulationConfig(ba_overhead_s=overhead, frame_time_s=fat)
        # Shared batch simulator: segment replays recur across timelines.
        simulator = BatchFlowSimulator(config)
        policies = dict(heuristics)
        policies["LiBRA"] = make_libra(overhead, fat)
        generator = TimelineGenerator(main_dataset, seed=42)
        panel = {}
        for scenario in ScenarioType:
            timelines = generator.batch(scenario, TIMELINES_PER_SCENARIO)
            gaps = {name: [] for name in policies}
            for timeline in timelines:
                oracle = OracleDelay(config, 1.0)
                _, oracle_delay, _ = simulate_timeline(
                    oracle, timeline, config, simulator=simulator
                )
                for name, policy in policies.items():
                    _, delay, _ = simulate_timeline(
                        policy, timeline, config, simulator=simulator
                    )
                    gaps[name].append((delay - oracle_delay) * 1e3)
            panel[scenario.value] = {k: np.array(v) for k, v in gaps.items()}
        panels[(overhead, fat)] = panel
    return panels


def test_fig13_multi_impairment_delay(
    benchmark, record, main_dataset, make_libra, heuristics
):
    panels = benchmark.pedantic(
        run_panels, args=(main_dataset, make_libra, heuristics),
        rounds=1, iterations=1,
    )
    lines = ["Fig. 13: mean recovery-delay difference vs Oracle-Delay (ms)"]
    for (overhead, fat), panel in panels.items():
        lines.append(f"-- BA overhead {overhead * 1e3:g} ms, FAT {fat * 1e3:g} ms")
        for scenario, gaps in panel.items():
            for name, values in gaps.items():
                lines.append(f"   {scenario:>12} {name:>9}: {boxplot_stats(values)}")
    record("fig13_multi_delay", lines)

    for (overhead, fat), panel in panels.items():
        pooled = {
            name: np.concatenate([panel[s.value][name] for s in ScenarioType])
            for name in panel["mobility"]
        }
        libra_median = np.median(pooled["LiBRA"])
        assert libra_median < 40.0, (overhead, fat)  # paper: ≤35 ms

        if overhead <= 1e-3:
            # Cheap sweep: BA First is near-optimal on delay (paper <1 ms).
            assert np.median(pooled["BA First"]) < 5.0, (overhead, fat)
        else:
            # 250 ms sweep: BA First's delay gap explodes; LiBRA stays low.
            assert np.median(pooled["BA First"]) > 100.0, (overhead, fat)
            assert libra_median < np.median(pooled["BA First"]), (overhead, fat)
