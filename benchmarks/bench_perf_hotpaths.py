"""Hot-path wall-clock benchmark: the repo's perf trajectory seed.

Times the four paths the ROADMAP's "fast as the hardware allows" goal
lives or dies by, and writes them to a JSON artifact (``BENCH_perf.json``)
so successive PRs can compare against a recorded baseline:

* ``dataset_build`` — the full measurement campaign over the main-building
  placement plans (ray tracing, sector sweeps, per-MCS trace capture);
* ``rf_fit``       — fitting the paper's random forest on the campaign;
* ``rf_predict``   — batch inference over a replicated feature matrix;
* ``grid_point``   — one §8 evaluation-grid operating point end to end.

Run it as a script (``PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py``).
``--scale smoke`` shrinks every workload for CI; ``--baseline PATH``
compares against a previously recorded JSON and records the speedups.

The numbers are best-of-``--repeats`` wall-clock seconds, measured with
``time.perf_counter`` in-process (no subprocess noise).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"


def _best_of(repeats: int, fn) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs; returns (seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmarks(scale: str, repeats: int, workers: int) -> dict:
    from repro.dataset.builder import DatasetBuildConfig, build_dataset
    from repro.env.placement import lobby_plan, main_building_plans
    from repro.ml.forest import RandomForestClassifier
    from repro.sim.sweep import EvaluationGrid, OperatingPoint

    if scale == "smoke":
        plans = [lobby_plan()]
        n_estimators, grid_trees = 10, 6
        predict_rows = 1000
    else:
        plans = main_building_plans()
        n_estimators, grid_trees = 60, 20
        predict_rows = 5000

    config = DatasetBuildConfig(seed=0, include_na=True)

    def build():
        try:
            return build_dataset(plans, config, workers=workers)
        except TypeError:  # pre-runtime builder has no workers parameter
            return build_dataset(plans, config)

    dataset_build_s, dataset = _best_of(repeats, build)
    X, y = dataset.feature_matrix(), dataset.labels()

    def fit():
        model = RandomForestClassifier(
            n_estimators=n_estimators, max_depth=14, random_state=0
        )
        model.fit(X, y)
        return model

    rf_fit_s, model = _best_of(repeats, fit)

    reps = int(np.ceil(predict_rows / max(len(X), 1)))
    X_big = np.tile(X, (reps, 1))[:predict_rows]
    rf_predict_s, _ = _best_of(repeats, lambda: model.predict_proba(X_big))

    grid = EvaluationGrid(
        dataset, dataset.without_na(), n_estimators=grid_trees, max_depth=10,
        random_state=0,
    )
    point = OperatingPoint(5e-3, 2e-3, flow_duration_s=0.5)

    def grid_point():
        grid._model_cache.clear()  # time training + replay, not the cache
        return grid.run_point(point)

    grid_point_s, _ = _best_of(repeats, grid_point)

    return {
        "scale": scale,
        "repeats": repeats,
        "workers": workers,
        "dataset_entries": len(dataset),
        "timings_s": {
            "dataset_build": dataset_build_s,
            "rf_fit": rf_fit_s,
            "rf_predict": rf_predict_s,
            "grid_point": grid_point_s,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("full", "smoke"), default="full")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker count handed to the parallel runtime (1 = in-process)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="earlier BENCH_perf.json to compute speedups against",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="exit non-zero unless dataset_build and rf_fit are ≥X faster "
             "than the baseline",
    )
    parser.add_argument(
        "--pinned", type=Path, default=None,
        help="pinned baseline JSON for the regression gate: fail when "
             "grid_point or rf_fit exceeds its pinned timing by more than "
             "--max-regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional slowdown over the --pinned timings "
             "(default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.scale, args.repeats, args.workers)
    report["python"] = platform.python_version()
    report["numpy"] = np.__version__

    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        speedups = {}
        for name, seconds in report["timings_s"].items():
            base = baseline.get("timings_s", {}).get(name)
            if base and seconds > 0:
                speedups[name] = base / seconds
        report["baseline"] = {
            "path": str(args.baseline),
            "timings_s": baseline.get("timings_s", {}),
            "scale": baseline.get("scale"),
        }
        report["speedup_vs_baseline"] = speedups

    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for name, seconds in report["timings_s"].items():
        line = f"{name:>14}: {seconds:8.4f} s"
        speedup = report.get("speedup_vs_baseline", {}).get(name)
        if speedup is not None:
            line += f"  ({speedup:.2f}x vs baseline)"
        print(line)
    print(f"written to {args.out}")

    if args.min_speedup is not None:
        speedups = report.get("speedup_vs_baseline", {})
        for name in ("dataset_build", "rf_fit"):
            got = speedups.get(name, 0.0)
            if got < args.min_speedup:
                print(f"FAIL: {name} speedup {got:.2f}x < {args.min_speedup}x")
                return 1
        print(f"speedup gate OK (≥{args.min_speedup}x on dataset_build and rf_fit)")

    if args.pinned is not None:
        pinned = json.loads(args.pinned.read_text())
        pinned_timings = pinned.get("timings_s", {})
        failed = False
        for name in ("grid_point", "rf_fit"):
            base = pinned_timings.get(name)
            got = report["timings_s"].get(name)
            if not base or got is None:
                print(f"FAIL: no pinned timing for {name} in {args.pinned}")
                failed = True
                continue
            limit = base * (1.0 + args.max_regression)
            if got > limit:
                print(
                    f"FAIL: {name} {got:.4f} s exceeds pinned {base:.4f} s "
                    f"by more than {args.max_regression:.0%} "
                    f"(limit {limit:.4f} s)"
                )
                failed = True
        if failed:
            return 1
        print(
            f"regression gate OK (grid_point and rf_fit within "
            f"{args.max_regression:.0%} of {args.pinned})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
