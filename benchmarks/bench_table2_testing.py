"""Table 2 — cross-building testing dataset summary.

Paper values: Displacement 165 (129 BA / 36 RA, 34 positions), Blockage 27
(24/3, 4), Interference 36 (12/24, 4), Overall 228 (165/63, 42).
"""

from repro.dataset.builder import build_testing_dataset

PAPER = {
    "displacement": {"total": 165, "BA": 129, "RA": 36, "positions": 34},
    "blockage": {"total": 27, "BA": 24, "RA": 3, "positions": 4},
    "interference": {"total": 36, "BA": 12, "RA": 24, "positions": 4},
    "overall": {"total": 228, "BA": 165, "RA": 63, "positions": 42},
}


def test_table2_testing_dataset(benchmark, record):
    dataset = benchmark.pedantic(build_testing_dataset, rounds=1, iterations=1)
    summary = dataset.summary()
    lines = [
        "Table 2: testing dataset summary (measured vs paper)",
        f"{'scenario':>14} | {'total':>11} | {'BA':>9} | {'RA':>9} | {'positions':>9}",
    ]
    for scenario, paper_row in PAPER.items():
        measured = summary[scenario]
        lines.append(
            f"{scenario:>14} | "
            f"{measured['total']:>4} vs {paper_row['total']:>4} | "
            f"{measured['BA']:>3} vs {paper_row['BA']:>3} | "
            f"{measured['RA']:>3} vs {paper_row['RA']:>3} | "
            f"{measured['positions']:>3} vs {paper_row['positions']:>3}"
        )
    record("table2_testing", lines)

    assert abs(summary["overall"]["total"] - 228) / 228 < 0.20
    assert summary["displacement"]["BA"] > summary["displacement"]["RA"]
    assert summary["interference"]["RA"] > summary["interference"]["BA"]
    assert summary["blockage"]["positions"] == 4
    assert summary["interference"]["positions"] == 4
