"""§7 design experiments — the 3-class (BA/RA/NA) model and the
observation-window study.

Paper numbers: 3-class RF reaches 98 % 5-fold CV on the training dataset
and 94 % on the testing dataset; shortening the observation window from
2 s to 40 ms costs about 3 accuracy points (on the test dataset).
"""

import pytest

from repro.dataset.builder import (
    DatasetBuildConfig,
    build_main_dataset,
    build_testing_dataset,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import cross_validate, train_test_evaluate


def _forest():
    return RandomForestClassifier(n_estimators=60, max_depth=14, random_state=0)


def test_sec7_three_class_model(
    benchmark, record, main_dataset_with_na, testing_dataset_with_na
):
    def run():
        X, y = main_dataset_with_na.feature_matrix(), main_dataset_with_na.labels()
        cv = cross_validate(_forest, X, y, 5, random_state=0)
        acc, f1 = train_test_evaluate(
            _forest(), X, y,
            testing_dataset_with_na.feature_matrix(),
            testing_dataset_with_na.labels(),
        )
        return cv, acc, f1

    cv, acc, f1 = benchmark.pedantic(run, rounds=1, iterations=1)
    record("sec7_three_class", [
        "§7: 3-class (BA/RA/NA) random forest",
        f"5-fold CV on training dataset: {cv.mean_accuracy:.3f} (paper: 0.98)",
        f"accuracy on testing dataset:   {acc:.3f} (paper: 0.94)",
        f"weighted F1 on testing dataset: {f1:.3f}",
    ])
    assert cv.mean_accuracy > 0.85
    assert acc > 0.75


def test_sec7_observation_window(benchmark, record):
    """Retrain with 40 ms observation windows: metrics get ~5x noisier and
    accuracy drops by a few points (paper: 3 points)."""

    def run():
        results = {}
        for window in (1.0, 0.04):
            train = build_main_dataset(
                DatasetBuildConfig(include_na=True, observation_window_s=window)
            )
            test = build_testing_dataset(
                DatasetBuildConfig(include_na=True, seed=1, observation_window_s=window)
            )
            acc, _f1 = train_test_evaluate(
                _forest(),
                train.feature_matrix(), train.labels(),
                test.feature_matrix(), test.labels(),
            )
            results[window] = acc
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    drop = results[1.0] - results[0.04]
    record("sec7_observation_window", [
        "§7: observation-window study (3-class model, test-set accuracy)",
        f"1 s window:   {results[1.0]:.3f}",
        f"40 ms window: {results[0.04]:.3f}",
        f"drop: {drop * 100:.1f} points (paper: ~3 points)",
    ])
    assert results[0.04] <= results[1.0] + 0.02  # shorter window never helps
    assert drop < 0.15  # ...but the model stays usable
