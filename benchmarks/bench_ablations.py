"""Ablations of LiBRA's design choices (DESIGN.md §5).

Not in the paper — these quantify *why* each §7 design decision is there:

* 3-class (BA/RA/NA) vs 2-class model + always-adapt;
* the missing-ACK rule vs always-BA on a missing ACK;
* the learned model vs the §6.1 hand-threshold classifier;
* adaptive probing interval vs fixed T0;
* the α sweep of the utility label (how much ground truth moves).
"""

import numpy as np
import pytest

from repro.core.ground_truth import Action, GroundTruthConfig
from repro.core.libra import LiBRA, LiBRAConfig, ThresholdClassifier
from repro.core.rate_adaptation import RateAdaptation
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score
from repro.sim.engine import SimulationConfig, simulate_flow
from repro.sim.oracle import OracleData

CONFIG = SimulationConfig(ba_overhead_s=5e-3, frame_time_s=2e-3)
DURATION_S = 1.0


def _byte_gap_stats(policy, dataset):
    oracle = OracleData(CONFIG, DURATION_S)
    gaps = []
    for entry in dataset.without_na():
        best = simulate_flow(oracle, entry, CONFIG, DURATION_S)
        result = simulate_flow(policy, entry, CONFIG, DURATION_S)
        gaps.append((best.bytes_delivered - result.bytes_delivered) / 1e6)
    gaps = np.array(gaps)
    return float(np.mean(gaps <= 1.0)), float(gaps.mean())


def test_ablation_three_class_vs_two_class(
    benchmark, record, main_dataset, main_dataset_with_na, testing_dataset
):
    """The NA class prevents spurious adaptation on still-working links."""

    def run():
        X3, y3 = main_dataset_with_na.feature_matrix(), main_dataset_with_na.labels()
        three = RandomForestClassifier(n_estimators=60, random_state=0).fit(X3, y3)
        X2, y2 = main_dataset.feature_matrix(), main_dataset.labels()
        two = RandomForestClassifier(n_estimators=60, random_state=0).fit(X2, y2)
        return (
            _byte_gap_stats(LiBRA(three), testing_dataset),
            _byte_gap_stats(LiBRA(two), testing_dataset),
        )

    (match3, mean3), (match2, mean2) = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_three_class", [
        "Ablation: 3-class vs 2-class LiBRA (bytes vs Oracle-Data, 5 ms/2 ms)",
        f"3-class: matches oracle {match3:.0%}, mean gap {mean3:.1f} MB",
        f"2-class: matches oracle {match2:.0%}, mean gap {mean2:.1f} MB",
    ])
    # The 2-class model must adapt on every decision point, so it cannot
    # beat the 3-class model on average.
    assert mean3 <= mean2 + 0.5


def test_ablation_missing_ack_rule(benchmark, record, three_class_forest, testing_dataset):
    """§7's MCS-aware missing-ACK rule vs a naive always-BA fallback."""

    class AlwaysBaOnMissingAck(LiBRA):
        def _missing_ack_rule(self, observation):
            from repro.core.policies import PolicyDecision

            return PolicyDecision(Action.BA, "naive fallback")

    def run():
        smart = LiBRA(three_class_forest)
        naive = AlwaysBaOnMissingAck(three_class_forest)
        return (
            _byte_gap_stats(smart, testing_dataset),
            _byte_gap_stats(naive, testing_dataset),
        )

    (match_s, mean_s), (match_n, mean_n) = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_missing_ack", [
        "Ablation: §7 missing-ACK rule vs always-BA fallback",
        f"rule:      matches oracle {match_s:.0%}, mean gap {mean_s:.1f} MB",
        f"always-BA: matches oracle {match_n:.0%}, mean gap {mean_n:.1f} MB",
    ])
    # At a cheap sweep both behave almost identically (the rule picks BA
    # for cheap sweeps anyway); the rule must never be much worse.
    assert mean_s <= mean_n + 1.0


def test_ablation_learned_vs_thresholds(
    benchmark, record, three_class_forest, main_dataset_with_na, testing_dataset
):
    """The learned model vs the §6.1 hand-threshold rules — the paper's
    central argument is that thresholds do not compose into a good rule."""

    def run():
        X = testing_dataset.feature_matrix()
        y = testing_dataset.labels()
        learned_acc = accuracy_score(y, three_class_forest.predict(X))
        threshold_acc = accuracy_score(y, ThresholdClassifier().predict(X))
        learned = _byte_gap_stats(LiBRA(three_class_forest), testing_dataset)
        manual = _byte_gap_stats(LiBRA(ThresholdClassifier()), testing_dataset)
        return learned_acc, threshold_acc, learned, manual

    learned_acc, threshold_acc, learned, manual = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record("ablation_thresholds", [
        "Ablation: learned RF vs §6.1 hand-threshold classifier",
        f"accuracy on testing dataset: RF {learned_acc:.3f}, thresholds {threshold_acc:.3f}",
        f"RF policy:        matches oracle {learned[0]:.0%}, mean gap {learned[1]:.1f} MB",
        f"threshold policy: matches oracle {manual[0]:.0%}, mean gap {manual[1]:.1f} MB",
    ])
    assert learned_acc > threshold_acc + 0.05
    assert learned[1] <= manual[1] + 0.5


def test_ablation_probe_backoff(benchmark, record):
    """Adaptive probing interval vs fixed T0 on a link whose next MCS is
    dead: backoff cuts the wasted probe frames several-fold."""

    def run():
        from tests.conftest import make_traces

        traces = make_traces([2600.0, 0.0], cdr_value=0.99)
        traces.cdr[1] = 0.0
        adaptive = RateAdaptation(frame_time_s=2e-3)
        fixed = RateAdaptation(frame_time_s=2e-3, probe_backoff_cap=1)
        frames = 2000
        wasted_adaptive = sum(
            1 for o in adaptive.frames(traces, 0, frames) if o.probing
        )
        wasted_fixed = sum(1 for o in fixed.frames(traces, 0, frames) if o.probing)
        return wasted_adaptive, wasted_fixed

    wasted_adaptive, wasted_fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_probe_backoff", [
        "Ablation: adaptive probe interval T = T0·min(2^k, 32) vs fixed T0",
        f"probe frames wasted over 2000 frames: adaptive {wasted_adaptive}, "
        f"fixed {wasted_fixed}",
    ])
    assert wasted_adaptive < wasted_fixed / 3


def test_ablation_alpha_sweep(benchmark, record, main_dataset):
    """How much the ground truth moves as α shifts from delay- to
    throughput-weighted (the knob the operator owns)."""

    def run():
        rows = []
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            for overhead in (5e-3, 250e-3):
                config = GroundTruthConfig(alpha=alpha, ba_overhead_s=overhead)
                labels = main_dataset.labels(config)
                rows.append((alpha, overhead, float(np.mean(labels == "BA"))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: BA share of the ground truth as α and d_BA vary"]
    for alpha, overhead, ba_share in rows:
        lines.append(
            f"alpha {alpha:.2f}, BA overhead {overhead * 1e3:5.1f} ms -> BA {ba_share:.0%}"
        )
    record("ablation_alpha", lines)

    share = {(a, o): s for a, o, s in rows}
    # More throughput weight → more BA; a costlier sweep → less BA.
    assert share[(1.0, 5e-3)] >= share[(0.0, 5e-3)]
    assert share[(1.0, 250e-3)] <= share[(1.0, 5e-3)] + 1e-9


def test_ablation_feature_drop(benchmark, record, main_dataset):
    """Leave-one-feature-out accuracy: complements Table 3's importances."""

    def run():
        from repro.ml.model_selection import cross_validate

        X, y = main_dataset.feature_matrix(), main_dataset.labels()
        full = cross_validate(
            lambda: RandomForestClassifier(n_estimators=40, random_state=0),
            X, y, 5, random_state=0,
        ).mean_accuracy
        drops = {}
        from repro.core.metrics import FEATURE_NAMES

        for index, name in enumerate(FEATURE_NAMES):
            reduced = np.delete(X, index, axis=1)
            acc = cross_validate(
                lambda: RandomForestClassifier(n_estimators=40, random_state=0),
                reduced, y, 5, random_state=0,
            ).mean_accuracy
            drops[name] = full - acc
        return full, drops

    full, drops = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Ablation: leave-one-feature-out (full model accuracy {full:.3f})"]
    for name, drop in sorted(drops.items(), key=lambda kv: -kv[1]):
        lines.append(f"  without {name:>16}: accuracy drop {drop * 100:+5.1f} points")
    record("ablation_feature_drop", lines)

    # No single feature is irreplaceable (the other six largely cover it)…
    assert max(drops.values()) < 0.15
    # …and removing any feature never *helps* much.
    assert min(drops.values()) > -0.04