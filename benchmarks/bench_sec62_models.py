"""§6.2 — ML model comparison.

Paper numbers (accuracy / weighted F1):

* 5-fold CV, repeated: DT 95/95, RF 98/98, SVM 91/91, DNN 95/90;
* trained on the main building, tested on buildings 1-2:
  DT 85/85, RF 88/88, SVM 88/88, DNN 83/76.
"""

import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import repeated_cross_validate, train_test_evaluate
from repro.ml.nn import DenseNetworkClassifier
from repro.ml.svm import SVMClassifier
from repro.ml.tree import DecisionTreeClassifier

PAPER_CV = {"DT": (0.95, 0.95), "RF": (0.98, 0.98), "SVM": (0.91, 0.91), "DNN": (0.95, 0.90)}
PAPER_XB = {"DT": (0.85, 0.85), "RF": (0.88, 0.88), "SVM": (0.88, 0.88), "DNN": (0.83, 0.76)}

MODEL_FACTORIES = {
    "DT": lambda: DecisionTreeClassifier(max_depth=10),
    "RF": lambda: RandomForestClassifier(n_estimators=60, max_depth=14, random_state=1),
    "SVM": lambda: SVMClassifier(C=5.0),
    "DNN": lambda: DenseNetworkClassifier(epochs=100, random_state=1),
}


def _evaluate(main_dataset, testing_dataset):
    X, y = main_dataset.feature_matrix(), main_dataset.labels()
    X_test, y_test = testing_dataset.feature_matrix(), testing_dataset.labels()
    rows = {}
    for name, factory in MODEL_FACTORIES.items():
        cv = repeated_cross_validate(factory, X, y, n_splits=5, repeats=3, random_state=0)
        xb = train_test_evaluate(factory(), X, y, X_test, y_test)
        rows[name] = (cv.mean_accuracy, cv.mean_f1, xb[0], xb[1])
    return rows


def test_sec62_model_comparison(benchmark, record, main_dataset, testing_dataset):
    rows = benchmark.pedantic(
        _evaluate, args=(main_dataset, testing_dataset), rounds=1, iterations=1
    )
    lines = [
        "§6.2: model accuracy / weighted F1 (measured vs paper)",
        f"{'model':>5} | {'CV acc':>15} | {'CV F1':>15} | {'XB acc':>15} | {'XB F1':>15}",
    ]
    for name, (cv_acc, cv_f1, xb_acc, xb_f1) in rows.items():
        p_cv, p_xb = PAPER_CV[name], PAPER_XB[name]
        lines.append(
            f"{name:>5} | {cv_acc:.3f} vs {p_cv[0]:.2f} | {cv_f1:.3f} vs {p_cv[1]:.2f}"
            f" | {xb_acc:.3f} vs {p_xb[0]:.2f} | {xb_f1:.3f} vs {p_xb[1]:.2f}"
        )
    record("sec62_models", lines)

    # Every model must be far above the majority-class baseline and lose
    # some accuracy cross-building (the paper's qualitative finding).
    for name, (cv_acc, _cv_f1, xb_acc, _xb_f1) in rows.items():
        assert cv_acc > 0.80, name
        assert xb_acc > 0.70, name
        assert xb_acc <= cv_acc + 0.03, name  # transfer does not improve
    # Tree ensembles are competitive with (or better than) the single tree.
    assert rows["RF"][0] >= rows["DT"][0] - 0.02
