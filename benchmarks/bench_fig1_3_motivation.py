"""Figures 1-3 — the §3 COTS motivation study.

Three controlled scenarios with firmware-heuristic device models:

* Fig. 1 (static): the phone triggers BA constantly and flaps through
  sectors; the AP is steadier but not locked; disabling BA and locking the
  best sector improves throughput (paper: +26 %).
* Fig. 2 (blockage): BA keeps flapping, locking the best NLOS sector wins
  (paper: +16 %).
* Fig. 3 (mobility): the one case where BA pays off (paper: +15 %).
"""

import pytest

from repro.cots.device import (
    AP_PROFILE,
    PHONE_PROFILE,
    run_blockage_session,
    run_mobility_session,
    run_static_session,
)


def test_fig1_static(benchmark, record):
    def run():
        phone = run_static_session(duration_s=30.0, profile=PHONE_PROFILE, seed=0)
        ap = run_static_session(duration_s=30.0, profile=AP_PROFILE, seed=0)
        locked = run_static_session(duration_s=30.0, ba_enabled=False, seed=0)
        return phone, ap, locked

    phone, ap, locked = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = locked.throughput_mbps / ap.throughput_mbps - 1.0
    record("fig1_static", [
        "Fig. 1: static scenario (30 s session)",
        f"phone: {phone.ba_count} BA triggers, {phone.distinct_sectors()} sectors, "
        f"{phone.sector_switches()} switches (paper: >50 triggers, 6 sectors)",
        f"ap:    {ap.ba_count} BA triggers, {ap.distinct_sectors()} sectors, "
        f"{ap.sector_switches()} switches (paper: few sectors, repeated switching)",
        f"throughput: BA on {ap.throughput_mbps:.0f} Mbps, locked "
        f"{locked.throughput_mbps:.0f} Mbps -> locking gains {gain:+.0%} (paper: +26 %)",
    ])
    assert phone.ba_count > 20
    assert phone.distinct_sectors() >= 3
    assert ap.sector_switches() < phone.sector_switches()
    assert locked.throughput_mbps > ap.throughput_mbps


def test_fig2_blockage(benchmark, record):
    def run():
        phone = run_blockage_session(duration_s=30.0, profile=PHONE_PROFILE, seed=2)
        ap = run_blockage_session(duration_s=30.0, profile=AP_PROFILE, seed=2)
        locked = run_blockage_session(duration_s=30.0, ba_enabled=False, seed=2)
        return phone, ap, locked

    phone, ap, locked = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = locked.throughput_mbps / ap.throughput_mbps - 1.0
    record("fig2_blockage", [
        "Fig. 2: blockage scenario (30 s session, LOS blocked throughout)",
        f"phone: {phone.ba_count} BA triggers, {phone.distinct_sectors()} sectors "
        "(paper: repeated triggers, 4-5 sectors, occasional sector 255)",
        f"ap:    {ap.ba_count} BA triggers, {ap.distinct_sectors()} sectors",
        f"throughput: BA on {ap.throughput_mbps:.0f} Mbps, locked "
        f"{locked.throughput_mbps:.0f} Mbps -> locking gains {gain:+.0%} (paper: +16 %)",
    ])
    assert phone.ba_count > 5
    assert locked.throughput_mbps >= ap.throughput_mbps


def test_fig3_mobility(benchmark, record):
    def run():
        with_ba = run_mobility_session(duration_s=15.0, ba_enabled=True, seed=3)
        locked = run_mobility_session(duration_s=15.0, ba_enabled=False, seed=3)
        return with_ba, locked

    with_ba, locked = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = with_ba.throughput_mbps / locked.throughput_mbps - 1.0
    record("fig3_mobility", [
        "Fig. 3: mobility scenario (15 s walk away from the AP)",
        f"with BA: {with_ba.ba_count} triggers, {with_ba.distinct_sectors()} sectors, "
        f"{with_ba.throughput_mbps:.0f} Mbps",
        f"locked start sector: {locked.throughput_mbps:.0f} Mbps",
        f"-> BA gains {gain:+.0%} under mobility (paper: +15 %)",
    ])
    assert with_ba.throughput_mbps > locked.throughput_mbps
    assert with_ba.distinct_sectors() > 1
