"""Figure 10 — single-impairment flows: bytes delivered vs Oracle-Data.

For every (BA overhead, FAT) combination and both flow durations (0.4 s
and 1 s), the paper plots the CDF of ``Oracle-Data bytes − policy bytes``
over the combined buildings-1-2 dataset.  Headline claims:

* LiBRA matches the oracle in ~85 % of cases (FAT 2 ms);
* "BA First" matches in 70-81 % and worsens as the BA overhead grows;
* "RA First" is worst (50-58 %), and suffers most on long flows.
"""

import numpy as np
import pytest

from repro.constants import BA_OVERHEADS_S, FRAME_AGGREGATION_TIMES_S
from repro.sim.engine import SimulationConfig, simulate_flow
from repro.sim.oracle import OracleData
from repro.sim.results import cdf_points, fraction_at_most

MATCH_TOLERANCE_MB = 1.0
FLOW_DURATIONS_S = (0.4, 1.0)


def run_grid(testing_dataset, make_libra, heuristics):
    """gaps[(overhead, fat, duration)][policy] = array of MB differences.

    LiBRA is retrained per operating point: the §5.2 labels depend on
    (α, BA overhead, FAT), and §8.1 assigns α per overhead regime.
    """
    entries = testing_dataset.without_na().entries
    gaps = {}
    for overhead in BA_OVERHEADS_S:
        for fat in FRAME_AGGREGATION_TIMES_S:
            config = SimulationConfig(ba_overhead_s=overhead, frame_time_s=fat)
            policies = dict(heuristics)
            policies["LiBRA"] = make_libra(overhead, fat)
            for duration in FLOW_DURATIONS_S:
                oracle = OracleData(config, duration)
                cell = {name: [] for name in policies}
                for entry in entries:
                    best = simulate_flow(oracle, entry, config, duration)
                    for name, policy in policies.items():
                        result = simulate_flow(policy, entry, config, duration)
                        cell[name].append(
                            (best.bytes_delivered - result.bytes_delivered) / 1e6
                        )
                gaps[(overhead, fat, duration)] = {
                    name: np.array(values) for name, values in cell.items()
                }
    return gaps


def test_fig10_bytes_vs_oracle(
    benchmark, record, testing_dataset, make_libra, heuristics
):
    gaps = benchmark.pedantic(
        run_grid, args=(testing_dataset, make_libra, heuristics),
        rounds=1, iterations=1,
    )
    lines = ["Fig. 10: CDFs of Oracle-Data − policy bytes (MB)"]
    for (overhead, fat, duration), cell in gaps.items():
        lines.append(
            f"-- BA overhead {overhead * 1e3:g} ms, FAT {fat * 1e3:g} ms, "
            f"flow {duration:g} s"
        )
        for name, values in cell.items():
            match = fraction_at_most(values, MATCH_TOLERANCE_MB)
            points = cdf_points(values, num_points=5)
            series = ", ".join(f"{v:7.1f}@{p:.2f}" for v, p in points)
            lines.append(
                f"   {name:>9}: ==oracle {match:5.0%} | {series}"
            )
    record("fig10_single_data", lines)

    # Headline assertions on the FAT 2 ms / 1 s flow panels.
    for overhead in BA_OVERHEADS_S:
        cell = gaps[(overhead, 2e-3, 1.0)]
        libra_match = fraction_at_most(cell["LiBRA"], MATCH_TOLERANCE_MB)
        ba_match = fraction_at_most(cell["BA First"], MATCH_TOLERANCE_MB)
        ra_match = fraction_at_most(cell["RA First"], MATCH_TOLERANCE_MB)
        assert ba_match >= ra_match, overhead  # RA First is worst on bytes
        if overhead <= 5e-3:
            # α = 0.7 regime: LiBRA optimises mostly for throughput and
            # should track Oracle-Data closely (paper: ~85 %).
            assert libra_match > 0.70, overhead
            assert libra_match >= ra_match, overhead
            assert cell["LiBRA"].mean() <= cell["RA First"].mean(), overhead
        else:
            # α = 0.5 regime: LiBRA deliberately trades bytes for recovery
            # delay (the paper's own framing); its byte loss must still be
            # bounded — never worse than RA First's tail.
            assert libra_match >= ra_match - 0.02, overhead
            assert cell["LiBRA"].max() <= cell["RA First"].max() + 1.0, overhead

    # "BA First" degrades as the sweep gets slower.
    cheap = fraction_at_most(gaps[(0.5e-3, 2e-3, 1.0)]["BA First"], MATCH_TOLERANCE_MB)
    costly = fraction_at_most(gaps[(250e-3, 2e-3, 1.0)]["BA First"], MATCH_TOLERANCE_MB)
    assert costly <= cheap

    # Flow duration hurts "RA First" the most (suboptimal MCS accumulates).
    short = gaps[(5e-3, 2e-3, 0.4)]["RA First"].mean() / 0.4
    long = gaps[(5e-3, 2e-3, 1.0)]["RA First"].mean() / 1.0
    assert long >= short * 0.8  # per-second loss does not shrink with length
