"""Shared fixtures for the per-table/per-figure reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs the
experiment (timed by pytest-benchmark), writes the rows/series the paper
plots into ``benchmarks/results/<id>.txt``, and asserts the paper's
qualitative claims.  EXPERIMENTS.md indexes the result files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.libra import LiBRA
from repro.core.policies import BAFirstPolicy, RAFirstPolicy
from repro.dataset.builder import (
    DatasetBuildConfig,
    build_main_dataset,
    build_testing_dataset,
)
from repro.ml.forest import RandomForestClassifier

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Write one experiment's text artifact; returns the path."""

    def _record(name: str, lines) -> Path:
        path = results_dir / f"{name}.txt"
        if isinstance(lines, str):
            text = lines
        else:
            text = "\n".join(lines)
        path.write_text(text + "\n")
        return path

    return _record


@pytest.fixture(scope="session")
def main_dataset():
    return build_main_dataset()


@pytest.fixture(scope="session")
def testing_dataset():
    return build_testing_dataset()


@pytest.fixture(scope="session")
def main_dataset_with_na():
    return build_main_dataset(DatasetBuildConfig(include_na=True))


@pytest.fixture(scope="session")
def testing_dataset_with_na():
    return build_testing_dataset(DatasetBuildConfig(include_na=True, seed=1))


@pytest.fixture(scope="session")
def two_class_forest(main_dataset):
    model = RandomForestClassifier(n_estimators=60, max_depth=14, random_state=0)
    model.fit(main_dataset.feature_matrix(), main_dataset.labels())
    return model


@pytest.fixture(scope="session")
def three_class_forest(main_dataset_with_na):
    model = RandomForestClassifier(n_estimators=60, max_depth=14, random_state=0)
    model.fit(
        main_dataset_with_na.feature_matrix(), main_dataset_with_na.labels()
    )
    return model


@pytest.fixture(scope="session")
def libra_policy(three_class_forest):
    return LiBRA(three_class_forest)


@pytest.fixture(scope="session")
def make_libra(main_dataset_with_na):
    """Per-protocol-config LiBRA policies (cached).

    The ground-truth labels depend on (α, BA overhead, FAT), so the paper
    effectively trains one model per operating point (§8.1 assigns α = 0.7
    to the 0.5/5 ms sweeps and α = 0.5 to the 150/250 ms ones).  NA
    entries keep their NA label under any config.
    """
    from repro.constants import (
        ALPHA_FOR_HIGH_BA_OVERHEAD,
        ALPHA_FOR_LOW_BA_OVERHEAD,
    )
    from repro.core.ground_truth import GroundTruthConfig

    cache: dict[tuple, LiBRA] = {}
    X = main_dataset_with_na.feature_matrix()

    def _make(ba_overhead_s: float, frame_time_s: float) -> LiBRA:
        alpha = (
            ALPHA_FOR_LOW_BA_OVERHEAD
            if ba_overhead_s <= 10e-3
            else ALPHA_FOR_HIGH_BA_OVERHEAD
        )
        key = (alpha, ba_overhead_s, frame_time_s)
        if key not in cache:
            config = GroundTruthConfig(
                alpha=alpha, ba_overhead_s=ba_overhead_s, frame_time_s=frame_time_s
            )
            labels = main_dataset_with_na.labels(config)
            model = RandomForestClassifier(
                n_estimators=60, max_depth=14, random_state=0
            )
            model.fit(X, labels)
            cache[key] = LiBRA(model)
        return cache[key]

    return _make


@pytest.fixture()
def heuristics():
    return {"BA First": BAFirstPolicy(), "RA First": RAFirstPolicy()}
