"""Table 4 — 8K/60FPS VR over mobility timelines: stall duration & count.

The paper's numbers (avg stall duration ms / avg number of stalls):

==================  ========  ========  =======  ===========  ============
BA overhead, FAT    BA First  RA First  LiBRA    Oracle-Data  Oracle-Delay
==================  ========  ========  =======  ===========  ============
0.5 ms, 2 ms        16/46.4   16/97.5   16/0.1   0/0          16/46.5
250 ms, 2 ms        49/51.4   21.7/97.3 240/6.1  236.7/6.1    21.4/97.3
==================  ========  ========  =======  ===========  ============

Headline shape: LiBRA has far *fewer* stalls than both heuristics (at the
cost of longer individual stalls when the sweep is slow), and neither
oracle wins outright — throughput- and delay-optimality conflict for real
applications (§8.4).
"""

import numpy as np
import pytest

from repro.sim.batch import BatchFlowSimulator
from repro.sim.engine import SimulationConfig
from repro.sim.oracle import OracleData, OracleDelay
from repro.sim.timeline import ScenarioType, TimelineGenerator
from repro.sim.vr import profile_from_timeline, simulate_vr_session, synthesize_trace

CONFIG_GRID = ((0.5e-3, 2e-3), (0.5e-3, 10e-3), (250e-3, 2e-3), (250e-3, 10e-3))
NUM_TIMELINES = 50


def run_table(main_dataset, make_libra, heuristics):
    trace = synthesize_trace()
    table = {}
    for overhead, fat in CONFIG_GRID:
        config = SimulationConfig(ba_overhead_s=overhead, frame_time_s=fat)
        # Shared batch simulator: segment replays recur across timelines.
        simulator = BatchFlowSimulator(config)
        policies = dict(heuristics)
        policies["LiBRA"] = make_libra(overhead, fat)
        policies["Oracle-Data"] = OracleData(config, 1.0)
        policies["Oracle-Delay"] = OracleDelay(config, 1.0)
        generator = TimelineGenerator(main_dataset, seed=7)
        timelines = generator.batch(ScenarioType.MOBILITY, NUM_TIMELINES)
        row = {}
        for name, policy in policies.items():
            durations, counts = [], []
            for timeline in timelines:
                profile = profile_from_timeline(
                    policy, timeline, config, simulator=simulator
                )
                result = simulate_vr_session(profile, trace)
                durations.append(result.mean_stall_duration_ms)
                counts.append(result.num_stalls)
            row[name] = (float(np.mean(durations)), float(np.mean(counts)))
        table[(overhead, fat)] = row
    return table


def test_table4_vr_stalls(benchmark, record, main_dataset, make_libra, heuristics):
    table = benchmark.pedantic(
        run_table, args=(main_dataset, make_libra, heuristics),
        rounds=1, iterations=1,
    )
    lines = ["Table 4: VR stall duration (ms) / number of stalls (mean over 50 runs)"]
    for (overhead, fat), row in table.items():
        lines.append(f"-- BA overhead {overhead * 1e3:g} ms, FAT {fat * 1e3:g} ms")
        for name, (duration, count) in row.items():
            lines.append(f"   {name:>12}: {duration:7.1f} ms / {count:6.2f} stalls")
    record("table4_vr", lines)

    for (overhead, fat), row in table.items():
        # LiBRA stalls less often than RA First (the paper's key QoE win).
        assert row["LiBRA"][1] <= row["RA First"][1] + 0.5, (overhead, fat)
        # Oracle-Data has the fewest stalls of all.
        fewest = min(count for _, count in row.values())
        assert row["Oracle-Data"][1] <= fewest + 0.5, (overhead, fat)

    # With a cheap sweep, everyone's stall durations are comparable and
    # LiBRA's stall *count* is dramatically lower than the heuristics'.
    cheap = table[(0.5e-3, 2e-3)]
    assert cheap["LiBRA"][1] < 0.7 * cheap["RA First"][1] + 0.5

    # With a 250 ms sweep, BA-ish policies trade longer individual stalls
    # for fewer of them (the paper's Oracle-Data shows 236.7 ms / 6.1).
    slow = table[(250e-3, 2e-3)]
    assert slow["Oracle-Data"][1] <= slow["Oracle-Delay"][1]
