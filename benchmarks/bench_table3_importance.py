"""Table 3 — Gini importance of each PHY metric.

Paper values: SNR 0.215, ToF 0.08, Noise 0.16, PDP 0.06, CSI 0.12,
CDR 0.125, Initial MCS 0.26.  The paper's own caveat applies verbatim to
this reproduction: "the metric selection depends on the used hardware" —
our substrate yields a different ranking (CDR leads; initial MCS trails)
while preserving the headline property that no metric dominates and all
contribute.  EXPERIMENTS.md discusses the differences.
"""

import pytest

from repro.core.metrics import FEATURE_NAMES
from repro.ml.forest import RandomForestClassifier

PAPER = {
    "snr_diff_db": 0.215,
    "tof_diff_ns": 0.08,
    "noise_diff_db": 0.16,
    "pdp_similarity": 0.06,
    "csi_similarity": 0.12,
    "cdr": 0.125,
    "initial_mcs": 0.26,
}


def test_table3_gini_importance(benchmark, record, main_dataset):
    def train():
        model = RandomForestClassifier(n_estimators=80, max_depth=14, random_state=0)
        model.fit(main_dataset.feature_matrix(), main_dataset.labels())
        return model.gini_importance()

    importances = benchmark.pedantic(train, rounds=1, iterations=1)
    table = dict(zip(FEATURE_NAMES, importances))
    lines = ["Table 3: Gini importance (measured vs paper)"]
    for name in FEATURE_NAMES:
        lines.append(f"{name:>16}: {table[name]:.3f} vs {PAPER[name]:.3f}")
    record("table3_importance", lines)

    assert abs(sum(table.values()) - 1.0) < 1e-9
    assert max(table.values()) < 0.6  # "no metric has a very high value"
    assert min(table.values()) > 0.01  # "all metrics are useful"
    # SNR stays among the informative metrics, ToF among the weaker ones.
    ranked = sorted(table, key=table.get, reverse=True)
    assert "snr_diff_db" in ranked[:4]
    assert table["tof_diff_ns"] < max(table.values())
