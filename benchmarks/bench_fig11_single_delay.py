"""Figure 11 — single-impairment flows: recovery delay vs Oracle-Delay.

CDFs of ``policy delay − Oracle-Delay delay`` per (BA overhead, FAT).
Headline claims:

* "RA First" has the longest delays when the BA overhead is small;
* "BA First" has the longest delays when the BA overhead is large (its
  median gap exceeds 200 ms at a 250 ms sweep);
* LiBRA strikes the balance: within 5 ms of optimal in 57-98 % of cases
  across all parameter combinations.
"""

import numpy as np
import pytest

from repro.constants import BA_OVERHEADS_S, FRAME_AGGREGATION_TIMES_S
from repro.sim.engine import SimulationConfig, simulate_flow
from repro.sim.oracle import OracleDelay
from repro.sim.results import cdf_points, fraction_at_most

FLOW_DURATION_S = 1.0


def run_grid(testing_dataset, make_libra, heuristics):
    entries = testing_dataset.without_na().entries
    gaps = {}
    for overhead in BA_OVERHEADS_S:
        for fat in FRAME_AGGREGATION_TIMES_S:
            config = SimulationConfig(ba_overhead_s=overhead, frame_time_s=fat)
            policies = dict(heuristics)
            policies["LiBRA"] = make_libra(overhead, fat)
            oracle = OracleDelay(config, FLOW_DURATION_S)
            cell = {name: [] for name in policies}
            for entry in entries:
                best = simulate_flow(oracle, entry, config, FLOW_DURATION_S)
                for name, policy in policies.items():
                    result = simulate_flow(policy, entry, config, FLOW_DURATION_S)
                    cell[name].append(
                        (result.recovery_delay_s - best.recovery_delay_s) * 1e3
                    )
            gaps[(overhead, fat)] = {
                name: np.array(values) for name, values in cell.items()
            }
    return gaps


def test_fig11_delay_vs_oracle(
    benchmark, record, testing_dataset, make_libra, heuristics
):
    gaps = benchmark.pedantic(
        run_grid, args=(testing_dataset, make_libra, heuristics),
        rounds=1, iterations=1,
    )
    lines = ["Fig. 11: CDFs of policy delay − Oracle-Delay delay (ms)"]
    for (overhead, fat), cell in gaps.items():
        lines.append(f"-- BA overhead {overhead * 1e3:g} ms, FAT {fat * 1e3:g} ms")
        for name, values in cell.items():
            within5 = fraction_at_most(values, 5.0)
            points = cdf_points(values, num_points=5)
            series = ", ".join(f"{v:7.1f}@{p:.2f}" for v, p in points)
            lines.append(f"   {name:>9}: ≤5ms {within5:5.0%} | median "
                         f"{np.median(values):6.1f} ms | {series}")
    record("fig11_single_delay", lines)

    for (overhead, fat), cell in gaps.items():
        # Delay gaps are never negative (the oracle is optimal).
        for values in cell.values():
            assert (values >= -1e-6).all()
        libra_within5 = fraction_at_most(cell["LiBRA"], 5.0)
        assert libra_within5 > 0.45, (overhead, fat)  # paper: 57-98 %

    # RA First worst at small sweeps, BA First worst at big sweeps.
    small = gaps[(0.5e-3, 2e-3)]
    assert np.median(small["RA First"]) >= np.median(small["BA First"])
    big = gaps[(250e-3, 2e-3)]
    assert np.median(big["BA First"]) >= np.median(big["RA First"])
    # Among entries that actually break the link, BA First pays the full
    # sweep (the paper's >200 ms median is over break-only cases; roughly
    # half of our entries leave the current MCS working, where every
    # policy answers NA and the gap is 0 — hence the quartile check).
    assert np.percentile(big["BA First"], 75) > 200.0
    assert np.percentile(big["LiBRA"], 75) < np.percentile(big["BA First"], 75)
