"""Figure 12 — multi-impairment timelines: ratio of bytes vs Oracle-Data.

50 random timelines per scenario type (§8.3); boxplots of the fraction of
Oracle-Data's bytes each policy delivers.  Headline claims:

* LiBRA delivers 90-95 % of the oracle's bytes in the median over all
  scenarios; "BA First" 90-92 %; "RA First" only 71-82 %;
* Mixed is the hardest scenario type for everyone;
* LiBRA never drops below ~70 % of the oracle.
"""

import numpy as np
import pytest

from repro.sim.batch import BatchFlowSimulator
from repro.sim.engine import SimulationConfig, simulate_timeline
from repro.sim.oracle import OracleData
from repro.sim.results import boxplot_stats
from repro.sim.timeline import ScenarioType, TimelineGenerator

CONFIG_GRID = (
    (0.5e-3, 2e-3),
    (250e-3, 2e-3),
    (0.5e-3, 10e-3),
    (250e-3, 10e-3),
)
TIMELINES_PER_SCENARIO = 50


def run_panels(main_dataset, make_libra, heuristics):
    """ratios[(overhead, fat)][scenario][policy] = array of byte ratios."""
    panels = {}
    for overhead, fat in CONFIG_GRID:
        config = SimulationConfig(ba_overhead_s=overhead, frame_time_s=fat)
        # One batch simulator per config: impaired segments recur across
        # timelines, so the trajectory/outcome caches amortise the replay.
        simulator = BatchFlowSimulator(config)
        policies = dict(heuristics)
        policies["LiBRA"] = make_libra(overhead, fat)
        generator = TimelineGenerator(main_dataset, seed=42)
        panel = {}
        for scenario in ScenarioType:
            timelines = generator.batch(scenario, TIMELINES_PER_SCENARIO)
            ratios = {name: [] for name in policies}
            for timeline in timelines:
                # The data oracle decides per segment with full knowledge.
                oracle = OracleData(config, max(s.duration_s for s in timeline.segments))
                oracle_bytes, _, _ = simulate_timeline(
                    oracle, timeline, config, simulator=simulator
                )
                for name, policy in policies.items():
                    policy_bytes, _, _ = simulate_timeline(
                        policy, timeline, config, simulator=simulator
                    )
                    ratios[name].append(
                        policy_bytes / oracle_bytes if oracle_bytes > 0 else 1.0
                    )
            panel[scenario.value] = {k: np.array(v) for k, v in ratios.items()}
        panels[(overhead, fat)] = panel
    return panels


def test_fig12_multi_impairment_bytes(
    benchmark, record, main_dataset, make_libra, heuristics
):
    panels = benchmark.pedantic(
        run_panels, args=(main_dataset, make_libra, heuristics),
        rounds=1, iterations=1,
    )
    lines = ["Fig. 12: ratio of bytes delivered vs Oracle-Data (boxplots)"]
    for (overhead, fat), panel in panels.items():
        lines.append(f"-- BA overhead {overhead * 1e3:g} ms, FAT {fat * 1e3:g} ms")
        for scenario, ratios in panel.items():
            for name, values in ratios.items():
                stats = boxplot_stats(values)
                lines.append(f"   {scenario:>12} {name:>9}: {stats}")
    record("fig12_multi_data", lines)

    for (overhead, fat), panel in panels.items():
        # Pool all scenarios ("All" in the figure).
        pooled = {
            name: np.concatenate([panel[s.value][name] for s in ScenarioType])
            for name in panel["mobility"]
        }
        libra_median = np.median(pooled["LiBRA"])
        ra_median = np.median(pooled["RA First"])
        assert libra_median >= ra_median - 1e-6, (overhead, fat)
        if overhead <= 5e-3:
            # α = 0.7: LiBRA optimises throughput → near the oracle
            # (paper: 0.90-0.95 median, never below 0.70).
            assert libra_median > 0.88, (overhead, fat)
            assert np.min(pooled["LiBRA"]) > 0.55, (overhead, fat)
        else:
            # α = 0.5 at a 250 ms sweep: delay dominates the utility, so
            # LiBRA deliberately stays RA-like on bytes and takes its win
            # on recovery delay instead (Fig. 13's panels).  The paper's
            # LiBRA kept a higher byte ratio here — see EXPERIMENTS.md.
            assert libra_median > 0.70, (overhead, fat)

    # Ratios never exceed 1 (the oracle is per-segment optimal).
    for panel in panels.values():
        for ratios in panel.values():
            for values in ratios.values():
                assert (values <= 1.0 + 1e-9).all()
