"""Table 1 — main/training dataset summary.

Paper values: Displacement 479 (380 BA / 99 RA, 94 positions), Blockage 81
(72/9, 12), Interference 108 (36/72, 12), Overall 668 (488/180, 118).
"""

from repro.dataset.builder import build_main_dataset

PAPER = {
    "displacement": {"total": 479, "BA": 380, "RA": 99, "positions": 94},
    "blockage": {"total": 81, "BA": 72, "RA": 9, "positions": 12},
    "interference": {"total": 108, "BA": 36, "RA": 72, "positions": 12},
    "overall": {"total": 668, "BA": 488, "RA": 180, "positions": 118},
}


def _format_rows(summary) -> list[str]:
    lines = [
        "Table 1: main/training dataset summary (measured vs paper)",
        f"{'scenario':>14} | {'total':>11} | {'BA':>9} | {'RA':>9} | {'positions':>11}",
    ]
    for scenario, paper_row in PAPER.items():
        measured = summary[scenario]
        lines.append(
            f"{scenario:>14} | "
            f"{measured['total']:>4} vs {paper_row['total']:>4} | "
            f"{measured['BA']:>3} vs {paper_row['BA']:>3} | "
            f"{measured['RA']:>3} vs {paper_row['RA']:>3} | "
            f"{measured['positions']:>4} vs {paper_row['positions']:>4}"
        )
    return lines


def test_table1_main_dataset(benchmark, record):
    dataset = benchmark.pedantic(build_main_dataset, rounds=1, iterations=1)
    summary = dataset.summary()
    record("table1_dataset", _format_rows(summary))

    # Shape assertions: totals within ~15 %, class balance directions right.
    for scenario, paper_row in PAPER.items():
        measured = summary[scenario]
        assert abs(measured["total"] - paper_row["total"]) / paper_row["total"] < 0.15
    assert summary["displacement"]["BA"] > summary["displacement"]["RA"]
    assert summary["blockage"]["BA"] > 5 * summary["blockage"]["RA"] / 2
    assert summary["interference"]["RA"] > summary["interference"]["BA"]
    assert summary["overall"]["BA"] > summary["overall"]["RA"]
