"""Extension studies: the paper's named future work, quantified.

* **Online training** (the companion work's finding that learned
  adaptation is environment-dependent): an OnlineForest deployed in the
  unseen buildings closes part of the cross-building accuracy gap as it
  observes labelled decisions.
* **Blockage-pattern learning** (§7's "learning link status patterns over
  longer periods"): against periodic blockage, the pattern learner
  predicts upcoming breaks, converting missing-ACK recoveries into
  pre-armed ones.
* **Hyper-parameter search** (§6.2's model selection, reproduced as a
  grid instead of folklore).
"""

import numpy as np
import pytest

from repro.core.history import BlockagePatternLearner
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score
from repro.ml.online import OnlineForest
from repro.ml.tuning import GridSearch
from repro.ml.tree import DecisionTreeClassifier


def test_extension_online_training(benchmark, record, main_dataset, testing_dataset):
    def run():
        X_train, y_train = main_dataset.feature_matrix(), main_dataset.labels()
        X_test, y_test = testing_dataset.feature_matrix(), testing_dataset.labels()
        offline = RandomForestClassifier(n_estimators=40, random_state=0)
        offline.fit(X_train, y_train)
        baseline = accuracy_score(y_test, offline.predict(X_test))

        online = OnlineForest(
            X_train, y_train, n_estimators=40, refit_every=25, buffer_size=300,
        )
        rng = np.random.default_rng(0)
        order = rng.permutation(len(y_test))
        split = len(order) // 2
        for index in order[:split]:  # first half observed in deployment
            online.observe(X_test[index], y_test[index])
        holdout = order[split:]
        adapted = accuracy_score(
            y_test[holdout], online.predict(X_test[holdout])
        )
        return baseline, adapted, online.refits

    baseline, adapted, refits = benchmark.pedantic(run, rounds=1, iterations=1)
    record("extension_online_training", [
        "Extension: online training in the unseen buildings",
        f"offline cross-building accuracy: {baseline:.3f}",
        f"after observing half the deployment traffic: {adapted:.3f} "
        f"({refits} refits)",
    ])
    assert adapted >= baseline - 0.02  # adaptation never hurts materially
    assert refits >= 3


def test_extension_blockage_pattern(benchmark, record):
    def run():
        rng = np.random.default_rng(1)
        learner = BlockagePatternLearner(tolerance=0.25)
        period = 2.5
        hits = np.cumsum(period + rng.normal(0.0, 0.08, 24))
        predicted = 0
        warmup = 0
        for hit in hits:
            if learner.should_prearm(hit - 0.05, guard_s=0.15):
                predicted += 1
            else:
                warmup += 1
            learner.record_break(float(hit))
        return predicted, warmup, learner.period_s()

    predicted, warmup, period = benchmark.pedantic(run, rounds=1, iterations=1)
    record("extension_blockage_pattern", [
        "Extension: periodic-blockage prediction (person pacing every 2.5 s)",
        f"breaks predicted in advance: {predicted} / {predicted + warmup}",
        f"learned period: {period:.2f} s (true: 2.50 s)",
    ])
    assert predicted >= 15  # everything after the warm-up
    assert period == pytest.approx(2.5, abs=0.2)


def test_extension_model_tuning(benchmark, record, main_dataset):
    def run():
        search = GridSearch(
            DecisionTreeClassifier,
            {"criterion": ["gini", "entropy"], "max_depth": [4, 8, 12]},
            n_splits=4,
        )
        return search.fit(main_dataset.feature_matrix(), main_dataset.labels())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Extension: §6.2 decision-tree hyper-parameter grid"]
    lines += [f"  {result}" for result in results]
    record("extension_model_tuning", lines)
    assert results[0].accuracy >= results[-1].accuracy
    assert results[0].params["max_depth"] >= 8  # shallow trees underfit
