"""Figures 4-9 — per-metric CDFs of BA-wins vs RA-wins cases.

For each PHY metric (SNR difference, ToF difference, noise-level
difference, PDP similarity, CSI similarity, CDR, initial MCS) and each of
the four datasets (displacement / blockage / interference / overall), the
bench writes the CDF series the paper plots and asserts the headline
separability claims of §6.1:

* Fig. 4a — SNR drops above ~7 dB are (almost) always BA under
  displacement, but the low-drop region is mixed;
* Fig. 5a — RA-wins cluster at negative ToF differences (backward motion),
  while zero/infinite differences are BA;
* Fig. 6 — PDP similarity is high everywhere (sparse channels) and cannot
  separate the classes;
* Fig. 8 — CDR is ~0 for most BA cases *and* most RA cases;
* Fig. 9 — RA-wins concentrate at high initial MCS.
"""

import numpy as np
import pytest

from repro.core.metrics import FEATURE_NAMES, TOF_INF_SENTINEL_NS
from repro.dataset.entry import ImpairmentKind
from repro.sim.results import cdf_points

FIGURES = {
    "fig4_snr_diff": "snr_diff_db",
    "fig5_tof_diff": "tof_diff_ns",
    "fig_noise_diff": "noise_diff_db",
    "fig6_pdp_similarity": "pdp_similarity",
    "fig7_csi_similarity": "csi_similarity",
    "fig8_cdr": "cdr",
    "fig9_initial_mcs": "initial_mcs",
}

DATASET_VIEWS = (
    ("displacement", ImpairmentKind.DISPLACEMENT),
    ("blockage", ImpairmentKind.BLOCKAGE),
    ("interference", ImpairmentKind.INTERFERENCE),
    ("overall", None),
)


def _series(dataset, kind, feature_index, label):
    subset = dataset if kind is None else dataset.of_kind(kind)
    values = [
        entry.features.to_array()[feature_index]
        for entry in subset
        if entry.label.value == label
    ]
    return np.array(values)


def _collect(main_dataset):
    """All 7 metrics x 4 views x 2 classes of CDF series."""
    tables = {}
    for figure, feature in FIGURES.items():
        index = FEATURE_NAMES.index(feature)
        lines = [f"{figure}: CDF of {feature} for BA-wins vs RA-wins"]
        for view_name, kind in DATASET_VIEWS:
            for label in ("BA", "RA"):
                values = _series(main_dataset, kind, index, label)
                if values.size == 0:
                    continue
                points = cdf_points(values, num_points=5)
                series = ", ".join(f"{v:8.2f}@{p:.2f}" for v, p in points)
                lines.append(
                    f"  {view_name:>13} {label} (n={values.size:3d}): {series}"
                )
        tables[figure] = lines
    return tables


def test_fig4_to_9_metric_cdfs(benchmark, record, main_dataset):
    tables = benchmark.pedantic(_collect, args=(main_dataset,), rounds=1, iterations=1)
    for figure, lines in tables.items():
        record(figure, lines)

    snr = FEATURE_NAMES.index("snr_diff_db")
    tof = FEATURE_NAMES.index("tof_diff_ns")
    pdp = FEATURE_NAMES.index("pdp_similarity")
    cdr = FEATURE_NAMES.index("cdr")
    mcs = FEATURE_NAMES.index("initial_mcs")
    displacement = ImpairmentKind.DISPLACEMENT

    # Fig. 4a: BA-wins sit at larger SNR drops than RA-wins.  (In our
    # geometric channel, pure backward motion keeps the beams aligned even
    # at large drops, so RA-wins extend further right than in the paper's
    # measured CDF — see EXPERIMENTS.md.)
    ba_snr = _series(main_dataset, displacement, snr, "BA")
    ra_snr = _series(main_dataset, displacement, snr, "RA")
    assert np.median(ba_snr) > np.median(ra_snr) + 3.0
    assert np.mean(ba_snr > 7.0) > 0.6

    # Fig. 5a: RA-wins have negative ToF differences; the ToF sentinel
    # (infinite reading) appears only among BA-wins.
    ba_tof = _series(main_dataset, displacement, tof, "BA")
    ra_tof = _series(main_dataset, displacement, tof, "RA")
    assert np.mean(ra_tof < 0) > 0.4
    assert np.mean(ba_tof >= TOF_INF_SENTINEL_NS - 1e-9) > 0.05
    assert np.mean(ra_tof >= TOF_INF_SENTINEL_NS - 1e-9) < 0.05

    # Fig. 6: PDP similarity stays high for both classes — no threshold.
    ba_pdp = _series(main_dataset, None, pdp, "BA")
    ra_pdp = _series(main_dataset, None, pdp, "RA")
    assert np.median(ba_pdp) > 0.6 and np.median(ra_pdp) > 0.6

    # Fig. 8: CDR is near-zero for the majority of BA cases and a large
    # fraction of RA cases — useless alone.
    ba_cdr = _series(main_dataset, None, cdr, "BA")
    ra_cdr = _series(main_dataset, None, cdr, "RA")
    assert np.mean(ba_cdr < 0.1) > 0.6
    assert np.mean(ra_cdr < 0.1) > 0.3

    # Fig. 9: RA-wins sit at higher initial MCS than BA-wins.
    ba_mcs = _series(main_dataset, displacement, mcs, "BA")
    ra_mcs = _series(main_dataset, displacement, mcs, "RA")
    assert np.median(ra_mcs) >= np.median(ba_mcs)
