"""§6.1 — the single-metric threshold study, exhaustively.

The paper eyeballs one threshold per metric from the CDFs and reports how
much of each class it separates (e.g. the 7 dB SNR-drop rule classifies
73 % of the displacement BA cases).  This bench finds the *best possible*
threshold per metric and per scenario family, and contrasts even that
upper bound against the learned model — the quantified version of the
§6.1 conclusion that "no metric works in all scenarios".
"""

import pytest

from repro.analysis.separability import separability_report
from repro.analysis.thresholds import threshold_study
from repro.dataset.entry import ImpairmentKind
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import cross_validate

VIEWS = (
    ("displacement", ImpairmentKind.DISPLACEMENT),
    ("blockage", ImpairmentKind.BLOCKAGE),
    ("interference", ImpairmentKind.INTERFERENCE),
    ("overall", None),
)


def run_study(main_dataset):
    studies = {name: threshold_study(main_dataset, kind) for name, kind in VIEWS}
    overlap = separability_report(main_dataset)
    rf = cross_validate(
        lambda: RandomForestClassifier(n_estimators=40, random_state=0),
        main_dataset.feature_matrix(), main_dataset.labels(), 5, random_state=0,
    ).mean_accuracy
    return studies, overlap, rf


def test_sec61_threshold_study(benchmark, record, main_dataset):
    studies, overlap, rf_accuracy = benchmark.pedantic(
        run_study, args=(main_dataset,), rounds=1, iterations=1
    )
    lines = ["§6.1: best single-metric threshold per scenario family"]
    for view, study in studies.items():
        lines.append(f"-- {view}")
        for rule in sorted(study.values(), key=lambda r: -r.accuracy):
            lines.append("   " + rule.describe())
    lines.append("")
    lines.append("class-separability (KS distance / histogram overlap):")
    for name, stats in overlap.items():
        lines.append(f"   {name:>16}: ks {stats['ks']:.2f}, overlap {stats['overlap']:.2f}")
    lines.append("")
    lines.append(f"learned RF 5-fold CV accuracy for comparison: {rf_accuracy:.3f}")
    record("sec61_thresholds", lines)

    overall = studies["overall"]
    best_single = max(rule.accuracy for rule in overall.values())
    # The paper's argument, quantified: even the best single-metric rule
    # trails the learned combination by a wide margin…
    assert rf_accuracy > best_single + 0.03
    # …and per-scenario thresholds do not transfer: the best metric differs
    # between scenario families (SNR-ish for displacement, noise-ish for
    # interference) or at least no metric tops every family.
    winners = {
        view: max(study.values(), key=lambda r: r.accuracy).feature
        for view, study in studies.items()
        if view != "overall"
    }
    assert len(set(winners.values())) >= 2, winners
    # Every metric's class distributions overlap substantially.
    assert all(stats["overlap"] > 0.05 for stats in overlap.values())
